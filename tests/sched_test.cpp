#include <gtest/gtest.h>

#include "model/system_model.h"
#include "sched/list_scheduler.h"
#include "sched/schedule.h"
#include "workloads/benchmarks.h"

namespace mshls {
namespace {

class SchedTest : public ::testing::Test {
 protected:
  SystemModel model_;
  PaperTypes types_ = AddPaperTypes(model_.library());

  BlockId AddBlockOf(DataFlowGraph g, int range) {
    const ProcessId p = model_.AddProcess("p" +
                                          std::to_string(model_.process_count()));
    const BlockId b = model_.AddBlock(p, "b", std::move(g), range);
    EXPECT_TRUE(model_.Validate().ok());
    return b;
  }

  DataFlowGraph Chain() {
    DataFlowGraph g;
    const OpId a = g.AddOp(types_.add, "a");
    const OpId m = g.AddOp(types_.mult, "m");
    const OpId b = g.AddOp(types_.add, "b");
    g.AddEdge(a, m);
    g.AddEdge(m, b);
    EXPECT_TRUE(g.Validate().ok());
    return g;
  }
};

TEST_F(SchedTest, ValidateAcceptsLegalSchedule) {
  const BlockId bid = AddBlockOf(Chain(), 6);
  BlockSchedule s(3);
  s.set_start(OpId{0}, 0);
  s.set_start(OpId{1}, 1);
  s.set_start(OpId{2}, 3);
  EXPECT_TRUE(
      ValidateBlockSchedule(model_.block(bid), model_.DelayOf(bid), s).ok());
  EXPECT_TRUE(s.Complete());
  EXPECT_EQ(s.Length(model_.block(bid).graph, model_.DelayOf(bid)), 4);
}

TEST_F(SchedTest, ValidateRejectsPrecedenceViolation) {
  const BlockId bid = AddBlockOf(Chain(), 6);
  BlockSchedule s(3);
  s.set_start(OpId{0}, 0);
  s.set_start(OpId{1}, 1);
  s.set_start(OpId{2}, 2);  // mult result not ready before step 3
  const Status st =
      ValidateBlockSchedule(model_.block(bid), model_.DelayOf(bid), s);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("precedence"), std::string::npos);
}

TEST_F(SchedTest, ValidateRejectsUnscheduledOp) {
  const BlockId bid = AddBlockOf(Chain(), 6);
  BlockSchedule s(3);
  s.set_start(OpId{0}, 0);
  EXPECT_FALSE(
      ValidateBlockSchedule(model_.block(bid), model_.DelayOf(bid), s).ok());
}

TEST_F(SchedTest, ValidateRejectsOutOfRangeFinish) {
  const BlockId bid = AddBlockOf(Chain(), 6);
  BlockSchedule s(3);
  s.set_start(OpId{0}, 0);
  s.set_start(OpId{1}, 4);  // mult ends at 6 == range is fine
  s.set_start(OpId{2}, 6);  // add ends at 7 > 6
  EXPECT_FALSE(
      ValidateBlockSchedule(model_.block(bid), model_.DelayOf(bid), s).ok());
}

TEST_F(SchedTest, OccupancyRespectsNonPipelinedDii) {
  // A non-pipelined two-cycle unit occupies both steps.
  const ResourceTypeId slow = model_.library().AddSimple("slow", 2, 3);
  DataFlowGraph g;
  g.AddOp(slow, "s1");
  g.AddOp(slow, "s2");
  ASSERT_TRUE(g.Validate().ok());
  const BlockId bid = AddBlockOf(std::move(g), 6);
  BlockSchedule s(2);
  s.set_start(OpId{0}, 0);
  s.set_start(OpId{1}, 1);
  const auto prof =
      OccupancyProfile(model_.block(bid), model_.library(), s, slow);
  EXPECT_EQ(prof, (std::vector<int>{1, 2, 1, 0, 0, 0}));
  EXPECT_EQ(OccupancyAt(model_.block(bid), model_.library(), s, slow, 1), 2);
}

TEST_F(SchedTest, PipelinedMultOccupiesIssueSlotOnly) {
  DataFlowGraph g;
  g.AddOp(types_.mult, "m1");
  g.AddOp(types_.mult, "m2");
  ASSERT_TRUE(g.Validate().ok());
  const BlockId bid = AddBlockOf(std::move(g), 6);
  BlockSchedule s(2);
  s.set_start(OpId{0}, 0);
  s.set_start(OpId{1}, 1);  // back-to-back issue on one pipelined unit
  const auto prof =
      OccupancyProfile(model_.block(bid), model_.library(), s, types_.mult);
  EXPECT_EQ(prof, (std::vector<int>{1, 1, 0, 0, 0, 0}));
}

// ---- list scheduling ----

TEST_F(SchedTest, ResourceConstrainedSerializesOnOneUnit) {
  DataFlowGraph g;
  for (int i = 0; i < 4; ++i) g.AddOp(types_.add, "a" + std::to_string(i));
  ASSERT_TRUE(g.Validate().ok());
  const BlockId bid = AddBlockOf(std::move(g), 10);
  std::vector<int> limits(model_.library().size(), 0);
  limits[types_.add.index()] = 1;
  auto res = ListScheduleResourceConstrained(model_.block(bid),
                                             model_.library(), limits);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().length, 4);
  EXPECT_EQ(res.value().usage[types_.add.index()], 1);
  EXPECT_TRUE(ValidateBlockSchedule(model_.block(bid), model_.DelayOf(bid),
                                    res.value().schedule)
                  .ok());
}

TEST_F(SchedTest, ResourceConstrainedUsesParallelism) {
  DataFlowGraph g;
  for (int i = 0; i < 4; ++i) g.AddOp(types_.add, "a" + std::to_string(i));
  ASSERT_TRUE(g.Validate().ok());
  const BlockId bid = AddBlockOf(std::move(g), 10);
  std::vector<int> limits(model_.library().size(), 0);
  limits[types_.add.index()] = 2;
  auto res = ListScheduleResourceConstrained(model_.block(bid),
                                             model_.library(), limits);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().length, 2);
}

TEST_F(SchedTest, ResourceConstrainedHonoursNonPipelinedOccupancy) {
  const ResourceTypeId slow = model_.library().AddSimple("slow2", 2, 3);
  DataFlowGraph g;
  g.AddOp(slow, "s1");
  g.AddOp(slow, "s2");
  ASSERT_TRUE(g.Validate().ok());
  const BlockId bid = AddBlockOf(std::move(g), 10);
  std::vector<int> limits(model_.library().size(), 0);
  limits[slow.index()] = 1;
  auto res = ListScheduleResourceConstrained(model_.block(bid),
                                             model_.library(), limits);
  ASSERT_TRUE(res.ok());
  // Two 2-cycle ops on one non-pipelined unit: 4 cycles.
  EXPECT_EQ(res.value().length, 4);
}

TEST_F(SchedTest, ResourceConstrainedPipelinedBackToBack) {
  DataFlowGraph g;
  for (int i = 0; i < 3; ++i) g.AddOp(types_.mult, "m" + std::to_string(i));
  ASSERT_TRUE(g.Validate().ok());
  const BlockId bid = AddBlockOf(std::move(g), 10);
  std::vector<int> limits(model_.library().size(), 0);
  limits[types_.mult.index()] = 1;
  auto res = ListScheduleResourceConstrained(model_.block(bid),
                                             model_.library(), limits);
  ASSERT_TRUE(res.ok());
  // Pipelined: issue at 0,1,2; last finishes at 4.
  EXPECT_EQ(res.value().length, 4);
}

TEST_F(SchedTest, ResourceConstrainedPrioritizesCriticalOps) {
  // Chain a->b->c (urgent) plus independent d; one adder. Least-slack-first
  // must start the chain immediately.
  DataFlowGraph g;
  const OpId a = g.AddOp(types_.add, "a");
  const OpId b = g.AddOp(types_.add, "b");
  const OpId c = g.AddOp(types_.add, "c");
  g.AddOp(types_.add, "d");
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  ASSERT_TRUE(g.Validate().ok());
  const BlockId bid = AddBlockOf(std::move(g), 4);
  std::vector<int> limits(model_.library().size(), 0);
  limits[types_.add.index()] = 1;
  auto res = ListScheduleResourceConstrained(model_.block(bid),
                                             model_.library(), limits);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().schedule.start(a), 0);
  EXPECT_EQ(res.value().length, 4);
}

TEST_F(SchedTest, TimeConstrainedMeetsDeadline) {
  const DataFlowGraph g = BuildEwf(types_);
  const BlockId bid = AddBlockOf(BuildEwf(types_), 19);
  (void)g;
  auto res = ListScheduleTimeConstrained(model_.block(bid), model_.library());
  ASSERT_TRUE(res.ok());
  EXPECT_LE(res.value().length, 19);
  EXPECT_TRUE(ValidateBlockSchedule(model_.block(bid), model_.DelayOf(bid),
                                    res.value().schedule)
                  .ok());
  EXPECT_GE(res.value().allocation[types_.add.index()], 1);
  EXPECT_GE(res.value().allocation[types_.mult.index()], 1);
}

TEST_F(SchedTest, TimeConstrainedUsesFewerResourcesWithLooserDeadline) {
  const BlockId tight = AddBlockOf(BuildEwf(types_), 17);
  const BlockId loose = AddBlockOf(BuildEwf(types_), 34);
  auto rt = ListScheduleTimeConstrained(model_.block(tight),
                                        model_.library());
  auto rl = ListScheduleTimeConstrained(model_.block(loose),
                                        model_.library());
  ASSERT_TRUE(rt.ok());
  ASSERT_TRUE(rl.ok());
  int tight_total = 0;
  int loose_total = 0;
  for (std::size_t i = 0; i < model_.library().size(); ++i) {
    tight_total += rt.value().allocation[i];
    loose_total += rl.value().allocation[i];
  }
  EXPECT_LE(loose_total, tight_total);
}

}  // namespace
}  // namespace mshls
