file(REMOVE_RECURSE
  "CMakeFiles/value_executor_test.dir/value_executor_test.cpp.o"
  "CMakeFiles/value_executor_test.dir/value_executor_test.cpp.o.d"
  "value_executor_test"
  "value_executor_test.pdb"
  "value_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
