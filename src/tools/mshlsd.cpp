// mshlsd — the scheduling daemon: accepts jobs over a unix-domain socket
// (serve/server.h) and schedules them on a persistent worker pool behind
// a two-tier schedule cache. Repeated submissions of the same design are
// answered from memory; with --cache-dir even a restarted daemon
// warm-starts from the persistent fingerprint store.
//
//   mshlsd --socket <path> [options]
//
//   --socket <path>         unix-domain socket to listen on (required;
//                           keep it short — sun_path caps near 100 bytes)
//   --jobs <n>              scheduling worker threads (default 1)
//   --clusters <n>          route coupled-mode jobs through hierarchical
//                           scheduling with this cluster-size cap
//                           (default 0 = flat coupled runs)
//   --queue <n>             admitted-but-waiting jobs beyond --jobs before
//                           clients get `overloaded` (default 8; -1 turns
//                           admission control off)
//   --cache-dir <dir>       persistent on-disk fingerprint cache
//   --cache-budget-mb <n>   size budget for --cache-dir (default 256)
//   --mem-cache <n>         in-memory schedule-cache entries (default 0 =
//                           unbounded)
//   --timeout-ms <n>        default per-job budget when the request sends
//                           none (default 0 = unlimited)
//   --idle-timeout-ms <n>   drop connections idle this long (default 0 =
//                           keep them open)
//   --max-request-bytes <n> request frame cap (default 4 MiB)
//   --metrics <file>        write stable metric counters as JSON at exit
//   --stats                 print all metrics at exit
//   --version               print the build stamp and exit
//
// SIGTERM / SIGINT begin a graceful drain: the listener closes, open
// connections get `shutting-down` for new requests, in-flight jobs
// finish, then the daemon exits 0 with a final stats line on stderr.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "common/build_info.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/disk_cache.h"
#include "serve/server.h"

using namespace mshls;

namespace {

struct Args {
  std::string socket_path;
  int jobs = 1;
  int clusters = 0;
  int queue = 8;
  std::string cache_dir;
  long cache_budget_mb = 256;
  std::size_t mem_cache = 0;
  long timeout_ms = 0;
  long idle_timeout_ms = 0;
  std::size_t max_request_bytes = 4u << 20;
  std::string metrics_file;
  bool stats = false;
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket <path> [--jobs <n>] [--clusters <n>] "
      "[--queue <n>]\n"
      "       [--cache-dir <dir>] [--cache-budget-mb <n>] [--mem-cache <n>]\n"
      "       [--timeout-ms <n>] [--idle-timeout-ms <n>]\n"
      "       [--max-request-bytes <n>] [--metrics <file>] [--stats]\n"
      "   or: %s --version\n",
      argv0, argv0);
  return 1;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--socket") {
      const char* v = next();
      if (!v) return false;
      args->socket_path = v;
    } else if (flag == "--jobs") {
      const char* v = next();
      if (!v) return false;
      args->jobs = std::atoi(v);
      if (args->jobs < 1) return false;
    } else if (flag == "--clusters") {
      const char* v = next();
      if (!v) return false;
      args->clusters = std::atoi(v);
      if (args->clusters < 1) return false;
    } else if (flag == "--queue") {
      const char* v = next();
      if (!v) return false;
      args->queue = std::atoi(v);
    } else if (flag == "--cache-dir") {
      const char* v = next();
      if (!v) return false;
      args->cache_dir = v;
    } else if (flag == "--cache-budget-mb") {
      const char* v = next();
      if (!v) return false;
      args->cache_budget_mb = std::atol(v);
      if (args->cache_budget_mb < 0) return false;
    } else if (flag == "--mem-cache") {
      const char* v = next();
      if (!v) return false;
      args->mem_cache = static_cast<std::size_t>(std::atol(v));
    } else if (flag == "--timeout-ms") {
      const char* v = next();
      if (!v) return false;
      args->timeout_ms = std::atol(v);
    } else if (flag == "--idle-timeout-ms") {
      const char* v = next();
      if (!v) return false;
      args->idle_timeout_ms = std::atol(v);
    } else if (flag == "--max-request-bytes") {
      const char* v = next();
      if (!v) return false;
      args->max_request_bytes = static_cast<std::size_t>(std::atol(v));
    } else if (flag == "--metrics") {
      const char* v = next();
      if (!v) return false;
      args->metrics_file = v;
    } else if (flag == "--stats") {
      args->stats = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return false;
    }
  }
  return !args->socket_path.empty();
}

serve::Server* g_server = nullptr;

/// Only async-signal-safe calls: an atomic flag flip plus one write(2)
/// into the server's wake pipe.
void HandleStopSignal(int) {
  if (g_server != nullptr) g_server->RequestStop();
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--version") == 0) {
      std::printf("%s\n", BuildInfoString().c_str());
      return 0;
    }

  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage(argv[0]);

  const bool want_obs = !args.metrics_file.empty() || args.stats;
  if (want_obs) {
    if (!obs::kCompiledIn)
      std::fprintf(stderr,
                   "warning: probes were compiled out (MSHLS_TRACE=OFF); "
                   "metrics will be empty\n");
    obs::MetricsRegistry::Global().Reset();
    obs::SetEnabled(true);
  }

  std::unique_ptr<serve::DiskCache> disk;
  if (!args.cache_dir.empty()) {
    serve::DiskCacheOptions disk_options;
    disk_options.dir = args.cache_dir;
    disk_options.max_bytes =
        static_cast<std::uint64_t>(args.cache_budget_mb) << 20;
    disk = std::make_unique<serve::DiskCache>(disk_options);
    if (Status s = disk->Open(); !s.ok()) {
      std::fprintf(stderr, "cannot open cache dir: %s\n", s.message().c_str());
      return 1;
    }
    std::fprintf(stderr, "persistent cache: %s (%zu entries, %llu bytes)\n",
                 disk->dir().c_str(), disk->entry_count(),
                 static_cast<unsigned long long>(disk->total_bytes()));
  }

  serve::ServerOptions options;
  options.socket_path = args.socket_path;
  options.workers = args.jobs;
  options.cluster_cap = args.clusters;
  options.queue_limit = args.queue;
  options.max_request_bytes = args.max_request_bytes;
  options.default_timeout_ms = args.timeout_ms;
  options.idle_timeout_ms = args.idle_timeout_ms;
  options.cache_capacity = args.mem_cache;
  options.store = disk.get();

  serve::Server server(options);
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "cannot start: %s\n", s.message().c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGINT, HandleStopSignal);

  std::fprintf(stderr, "mshlsd listening on %s (%d worker(s), queue %d)\n",
               args.socket_path.c_str(), args.jobs, args.queue);
  server.Wait();
  g_server = nullptr;

  server.PublishMetrics();
  if (disk != nullptr) disk->PublishMetrics();

  const serve::ServerStats stats = server.stats();
  std::fprintf(stderr,
               "mshlsd drained: %lld connection(s), %lld request(s) — "
               "%lld ok (%lld repaired), %lld failed, %lld overloaded, "
               "%lld too-large, %lld malformed, %lld shutting-down, "
               "%lld unknown-base\n",
               stats.connections, stats.requests, stats.ok, stats.repaired,
               stats.job_failed, stats.rejected_overloaded,
               stats.rejected_too_large, stats.rejected_malformed,
               stats.rejected_shutting_down, stats.rejected_unknown_base);
  if (disk != nullptr) {
    const serve::DiskCacheStats ds = disk->stats();
    std::fprintf(stderr,
                 "persistent cache: %lld hit(s) / %lld lookup(s) "
                 "(%.0f%% hit rate), %lld insertion(s), %lld eviction(s), "
                 "%lld skipped\n",
                 ds.hits, ds.hits + ds.misses, 100 * ds.HitRate(),
                 ds.insertions, ds.evictions,
                 ds.skipped_corrupt + ds.skipped_version);
  }

  if (!args.metrics_file.empty()) {
    std::ofstream out(args.metrics_file);
    if (out)
      out << obs::MetricsRegistry::Global().ToJson(/*include_timing=*/false);
    else
      std::fprintf(stderr, "cannot write %s\n", args.metrics_file.c_str());
  }
  if (args.stats)
    std::printf("\n--- metrics ---\n%s",
                obs::MetricsRegistry::Global().RenderText().c_str());
  if (want_obs) obs::SetEnabled(false);
  return 0;
}
