// Span tracer with Chrome trace_event JSON export (load the file in
// Perfetto / chrome://tracing) and a compact text summary.
//
// Model: a Tracer owns named TraceTracks; each track is a totally ordered
// event sequence (Begin/End spans nest, Instant marks a point) and renders
// as one "thread" row in the viewer. Thread safety is by ownership, not by
// locking the hot path: a track is appended to by exactly one logical
// owner at a time — either a shared named track whose caller already
// serializes (the batch driver, a scheduler's serial reduction loop), or a
// single-owner track minted with NewTrack() (unique "base#N" name) so
// concurrent jobs never share one. Track creation takes the tracer mutex;
// appends are lock-free.
//
// Determinism contract: the default export clock is kLogical — timestamps
// are sequence numbers assigned at export time in canonical (sorted track
// name) order, and wall_only tracks (thread-pool worker timelines) are
// skipped — so the trace content depends only on what the run computed,
// and `mshlsc --trace` output is bitwise identical at --jobs 1/2/8.
// kWall (`--trace-wall`) exports real steady_clock timestamps and every
// track, for actual profiling; it is machine- and interleaving-dependent
// by nature.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace mshls::obs {

enum class TraceClock { kLogical, kWall };

struct TraceEvent {
  char phase = 'i';       // 'B' span begin, 'E' span end, 'i' instant
  long long wall_ns = 0;  // steady_clock at record time
  std::string name;       // empty for 'E'
  std::string args_json;  // "" or a complete JSON object "{...}"
};

/// Incremental builder for a trace event's "args" object. Keys appear in
/// call order; values are JSON-escaped. Doubles use %.17g (round-trip
/// exact, so logical traces stay bit-identical).
class TraceArgs {
 public:
  TraceArgs& I(const char* key, long long v);
  TraceArgs& D(const char* key, double v);
  TraceArgs& S(const char* key, const std::string& v);
  /// Renders "{...}" (or "" when no keys were added); consumes the builder.
  [[nodiscard]] std::string Json();

 private:
  std::string body_;
};

class TraceTrack {
 public:
  void Begin(std::string name, std::string args_json = {});
  void End();
  void Instant(std::string name, std::string args_json = {});

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool wall_only() const { return wall_only_; }
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }

 private:
  friend class Tracer;
  TraceTrack(std::string name, bool wall_only)
      : name_(std::move(name)), wall_only_(wall_only) {}

  std::string name_;
  bool wall_only_;
  std::vector<TraceEvent> events_;
};

class Tracer {
 public:
  /// Shared named track; repeated calls with the same name return the same
  /// track. The caller is responsible for serializing appends to it.
  TraceTrack& GetTrack(const std::string& name, bool wall_only = false);

  /// Mints a fresh single-owner track named "base#N" (N counts per base
  /// under the tracer mutex), so concurrent owners never share a track.
  TraceTrack& NewTrack(const std::string& base, bool wall_only = false);

  /// Chrome trace_event JSON (the object form with "traceEvents"). The
  /// header carries build info and the clock mode under "otherData".
  [[nodiscard]] std::string ToChromeJson(TraceClock clock) const;

  /// Per-track and per-span-name aggregate counts (and wall-time totals)
  /// for terminal display.
  [[nodiscard]] std::string SummaryText() const;

  [[nodiscard]] long long TotalEvents() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<TraceTrack>> tracks_;
  std::map<std::string, TraceTrack*> named_;
  std::map<std::string, int> next_serial_;
};

/// RAII span; tolerates a null track so call sites can write
/// `ScopedSpan s(tracer ? &tracer->GetTrack(..) : nullptr, ...)`.
class ScopedSpan {
 public:
  explicit ScopedSpan(TraceTrack* track, std::string name,
                      std::string args_json = {})
      : track_(track) {
    if (track_ != nullptr) track_->Begin(std::move(name), std::move(args_json));
  }
  ~ScopedSpan() { Close(); }
  /// Ends the span early; idempotent (the destructor becomes a no-op).
  void Close() {
    if (track_ != nullptr) track_->End();
    track_ = nullptr;
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceTrack* track_;
};

#if defined(MSHLS_OBS_DISABLED)

/// With the probes compiled out no tracer is ever visible to the
/// instrumentation, so every `if (auto* t = GlobalTracer())` guard folds
/// to dead code.
constexpr Tracer* GlobalTracer() { return nullptr; }
inline void InstallGlobalTracer(Tracer*) {}
inline void UninstallGlobalTracer() {}

#else

namespace internal {
extern std::atomic<Tracer*> g_tracer;
}  // namespace internal

/// The installed tracer, or nullptr when tracing is off. One relaxed
/// atomic load; instrumentation guards every probe with it.
inline Tracer* GlobalTracer() {
  return internal::g_tracer.load(std::memory_order_acquire);
}

/// Installs (or, with nullptr, clears) the process-wide tracer. Not
/// synchronized against in-flight probes; install before the pipeline
/// starts and uninstall after it drains (the CLI does both).
void InstallGlobalTracer(Tracer* tracer);
inline void UninstallGlobalTracer() { InstallGlobalTracer(nullptr); }

#endif

}  // namespace mshls::obs
