#include "obs/metrics.h"

#include <bit>
#include <cstdio>

namespace mshls::obs {

#if !defined(MSHLS_OBS_DISABLED)
namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

void SetEnabled(bool on) {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}
#endif

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kStable: return "stable";
    case MetricKind::kTiming: return "timing";
  }
  return "unknown";
}

int Histogram::BucketIndex(long long v) {
  if (v <= 0) return 0;
  const int width = std::bit_width(static_cast<unsigned long long>(v));
  return width < kBuckets ? width : kBuckets - 1;
}

long long Histogram::BucketUpperEdge(int i) {
  if (i >= 62) return (1LL << 62);
  return 1LL << i;
}

void Histogram::Observe(long long v) {
  if (!Enabled()) return;
  counts_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry;  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     MetricKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = counters_.try_emplace(name, kind, nullptr);
  if (inserted) it->second.second = std::make_unique<Counter>();
  return *it->second.second;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name, MetricKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = gauges_.try_emplace(name, kind, nullptr);
  if (inserted) it->second.second = std::make_unique<Gauge>();
  return *it->second.second;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         MetricKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = histograms_.try_emplace(name, kind, nullptr);
  if (inserted) it->second.second = std::make_unique<Histogram>();
  return *it->second.second;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : counters_) entry.second->Reset();
  for (auto& [name, entry] : gauges_) entry.second->Reset();
  for (auto& [name, entry] : histograms_) entry.second->Reset();
}

std::string MetricsRegistry::RenderText(bool include_timing) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  char buf[160];
  const auto keep = [&](MetricKind kind) {
    return include_timing || kind == MetricKind::kStable;
  };
  for (const auto& [name, entry] : counters_) {
    if (!keep(entry.first)) continue;
    std::snprintf(buf, sizeof(buf), "counter   %-44s %-7s %lld\n",
                  name.c_str(), MetricKindName(entry.first),
                  entry.second->value());
    out += buf;
  }
  for (const auto& [name, entry] : gauges_) {
    if (!keep(entry.first)) continue;
    std::snprintf(buf, sizeof(buf), "gauge     %-44s %-7s %lld\n",
                  name.c_str(), MetricKindName(entry.first),
                  entry.second->value());
    out += buf;
  }
  for (const auto& [name, entry] : histograms_) {
    if (!keep(entry.first)) continue;
    const Histogram& h = *entry.second;
    std::snprintf(buf, sizeof(buf),
                  "histogram %-44s %-7s count=%lld sum=%lld", name.c_str(),
                  MetricKindName(entry.first), h.count(), h.sum());
    out += buf;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (h.bucket(i) == 0) continue;
      std::snprintf(buf, sizeof(buf), " le%lld=%lld",
                    Histogram::BucketUpperEdge(i), h.bucket(i));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::ToJson(bool include_timing) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\":[";
  char buf[96];
  const auto keep = [&](MetricKind kind) {
    return include_timing || kind == MetricKind::kStable;
  };
  // Metric names are restricted identifiers ([a-z0-9._-]) by convention,
  // but escape defensively anyway.
  const auto escaped = [](const std::string& s) {
    std::string e;
    for (char c : s) {
      if (c == '"' || c == '\\') e += '\\';
      e += c;
    }
    return e;
  };
  bool first = true;
  for (const auto& [name, entry] : counters_) {
    if (!keep(entry.first)) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"kind\":\"" + std::string(MetricKindName(entry.first)) +
           "\",\"name\":\"" + escaped(name) + "\",\"value\":" +
           std::to_string(entry.second->value()) + "}";
  }
  out += "],\"gauges\":[";
  first = true;
  for (const auto& [name, entry] : gauges_) {
    if (!keep(entry.first)) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"kind\":\"" + std::string(MetricKindName(entry.first)) +
           "\",\"name\":\"" + escaped(name) + "\",\"value\":" +
           std::to_string(entry.second->value()) + "}";
  }
  out += "],\"histograms\":[";
  first = true;
  for (const auto& [name, entry] : histograms_) {
    if (!keep(entry.first)) continue;
    if (!first) out += ',';
    first = false;
    const Histogram& h = *entry.second;
    out += "{\"buckets\":[";
    bool bfirst = true;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (h.bucket(i) == 0) continue;
      if (!bfirst) out += ',';
      bfirst = false;
      std::snprintf(buf, sizeof(buf), "{\"count\":%lld,\"le\":%lld}",
                    h.bucket(i), Histogram::BucketUpperEdge(i));
      out += buf;
    }
    out += "],\"count\":" + std::to_string(h.count()) + ",\"kind\":\"" +
           MetricKindName(entry.first) + "\",\"name\":\"" + escaped(name) +
           "\",\"sum\":" + std::to_string(h.sum()) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace mshls::obs
