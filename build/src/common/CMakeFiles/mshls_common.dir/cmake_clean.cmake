file(REMOVE_RECURSE
  "CMakeFiles/mshls_common.dir/math_util.cpp.o"
  "CMakeFiles/mshls_common.dir/math_util.cpp.o.d"
  "CMakeFiles/mshls_common.dir/status.cpp.o"
  "CMakeFiles/mshls_common.dir/status.cpp.o.d"
  "CMakeFiles/mshls_common.dir/text_table.cpp.o"
  "CMakeFiles/mshls_common.dir/text_table.cpp.o.d"
  "libmshls_common.a"
  "libmshls_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mshls_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
