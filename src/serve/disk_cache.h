// Persistent on-disk fingerprint cache — the durable second tier behind
// the in-memory ScheduleCache (modulo/schedule_cache.h).
//
// Layout: file-per-entry under one directory, named by the 16-hex-digit
// cache key (`<key>.msc`). Each file carries a versioned header with the
// producing build's stamp (common/build_info) for provenance, the key
// (cross-checked on load so a renamed file cannot alias another entry),
// the encoded result (serve/result_codec.h) and a trailing checksum of
// the encoded bytes (common/hashing — stable across builds/platforms).
//
// Durability rules:
//  * writes go to `<name>.tmp<suffix>` and are published with an atomic
//    rename(2) — a crash mid-write leaves a tmp file, never a torn entry;
//    Open() sweeps leftover tmp files;
//  * loads never trust the bytes: short files, bad magic, bad checksum,
//    foreign format versions and schedules that do not validate against
//    the requesting model — or fail the load-time re-certification
//    against the certificate stats stored with the entry (result_codec
//    v2) — are all counted + skipped (a warning through stderr once per
//    entry), NEVER a crash — the scheduler simply re-solves and
//    overwrites the bad entry;
//  * eviction is LRU by file mtime under a total-size budget (mtime is
//    refreshed on hit, so recency survives restarts); ties break on file
//    name so eviction order is deterministic.
//
// Thread-safe: one mutex around the index; file I/O happens under it too —
// simple and plenty for the job-sized payloads involved (entries are a
// few KiB; the scheduler runs are milliseconds to seconds).
#pragma once

#include <cstdint>
#include <filesystem>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "modulo/schedule_cache.h"

namespace mshls::serve {

struct DiskCacheOptions {
  std::string dir;
  /// Total size budget in bytes; 0 = unbounded.
  std::uint64_t max_bytes = 256u << 20;  // 256 MiB
  /// Print one stderr warning per skipped (corrupt/foreign) entry.
  bool warn_on_skip = true;
};

struct DiskCacheStats {
  long long hits = 0;
  long long misses = 0;
  long long insertions = 0;
  long long evictions = 0;
  /// Entries skipped because their bytes were unusable (truncated, bad
  /// magic/checksum, model mismatch) resp. written by another format
  /// version — both are misses, kept apart for diagnosis.
  long long skipped_corrupt = 0;
  long long skipped_version = 0;
  /// Leftover tmp files removed by Open() (crash-between-write residue).
  long long dropped_tmp = 0;
  /// Store() calls dropped because the encoded entry alone exceeds the
  /// size budget.
  long long rejected_oversize = 0;
  /// Store() calls that failed on I/O (disk full, permissions, ...).
  long long write_failures = 0;

  [[nodiscard]] double HitRate() const {
    const long long total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class DiskCache : public ScheduleStore {
 public:
  explicit DiskCache(DiskCacheOptions options);

  /// Creates the directory if needed, sweeps tmp residue and indexes the
  /// existing entries (unreadable directory => error; unreadable entries
  /// are dropped from the index, not fatal). Must be called before use.
  [[nodiscard]] Status Open();

  // ScheduleStore:
  [[nodiscard]] std::optional<CoupledResult> Load(
      std::uint64_t key, const SystemModel& model) override;
  void Store(std::uint64_t key, const SystemModel& model,
             const CoupledResult& result) override;

  [[nodiscard]] DiskCacheStats stats() const;
  [[nodiscard]] std::size_t entry_count() const;
  [[nodiscard]] std::uint64_t total_bytes() const;
  [[nodiscard]] const std::string& dir() const { return options_.dir; }

  /// Mirrors counter deltas into the obs metrics registry under
  /// `disk_cache.*` (stable kind, like the memory tier's counters).
  void PublishMetrics();

  /// File name of `key`'s entry ("<16 hex>.msc").
  [[nodiscard]] static std::string EntryFileName(std::uint64_t key);

 private:
  struct Entry {
    std::uint64_t bytes = 0;
    /// Position in lru_ (most-recent at the back).
    std::list<std::uint64_t>::iterator lru_pos;
  };

  /// Both take the lock held.
  void TouchLocked(std::uint64_t key);
  void EvictOverBudgetLocked();
  void DropEntryLocked(std::uint64_t key, bool count_as_eviction);
  [[nodiscard]] std::filesystem::path PathOf(std::uint64_t key) const;
  void Warn(const std::string& file, const std::string& why) const;

  DiskCacheOptions options_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> index_;
  /// LRU order, least-recent first.
  std::list<std::uint64_t> lru_;
  std::uint64_t total_bytes_ = 0;
  DiskCacheStats stats_;
  DiskCacheStats published_;
  /// Distinguishes tmp files of concurrent writers sharing a directory.
  std::uint64_t write_seq_ = 0;
};

}  // namespace mshls::serve
