// Experiment A9 — the paper's §1.1 discussion quantified: process merging
// (the traditional route to cross-process sharing) versus the modulo
// method, on two elliptic wave filters.
//
//   (a) independent + local assignment      — the traditional floor;
//   (b) independent + global modulo sharing — the paper's method;
//   (c) merged into one process + classic scheduling.
//
// Merging wins on raw area when it applies (one joint activation gives the
// scheduler full temporal knowledge) but destroys the independence the
// paper cares about: a spontaneous event for one filter in the worst case
// waits for a complete combined schedule, while the modulo method only
// rounds the start up to the next grid point (paper §1: "implementing the
// system by using independent processes is mandatory").
#include <cstdio>

#include "common/text_table.h"
#include "model/process_merge.h"
#include "modulo/baseline.h"
#include "modulo/coupled_scheduler.h"
#include "report/bench_json.h"
#include "workloads/benchmarks.h"

using namespace mshls;

int main(int argc, char** argv) {
  const std::string json_file = TakeJsonFlag(argc, argv);
  BenchJson json("A9", "merging");
  std::printf("== A9: process merging vs modulo sharing (2x EWF) ==\n\n");
  SystemModel model;
  const PaperTypes t = AddPaperTypes(model.library());
  const int deadline = 25;
  std::vector<ProcessId> procs;
  for (int i = 0; i < 2; ++i) {
    const ProcessId p = model.AddProcess("ewf" + std::to_string(i + 1),
                                         deadline);
    model.AddBlock(p, "main", BuildEwf(t), deadline);
    procs.push_back(p);
  }
  model.MakeGlobal(t.add, procs);
  model.MakeGlobal(t.mult, procs);
  const int period = 5;
  model.SetPeriod(t.add, period);
  model.SetPeriod(t.mult, period);
  if (!model.Validate().ok()) return 1;

  TextTable table;
  table.SetHeader({"configuration", "add", "mult", "area",
                   "worst-case event response", "independent?"});
  table.AlignRight(1);
  table.AlignRight(2);
  table.AlignRight(3);

  // (a) independent + local.
  {
    auto run = ScheduleLocalBaseline(model, CoupledParams{});
    if (!run.ok()) return 1;
    const Allocation& a = run.value().allocation;
    table.AddRow({"independent, local", std::to_string(a.TotalInstances(
                                            t.add)),
                  std::to_string(a.TotalInstances(t.mult)),
                  std::to_string(a.TotalArea(model.library())),
                  std::to_string(deadline) + " (start any time)", "yes"});
    json.AddRow()
        .S("configuration", "independent_local")
        .I("adders", a.TotalInstances(t.add))
        .I("multipliers", a.TotalInstances(t.mult))
        .I("area", a.TotalArea(model.library()))
        .I("worst_case_response", deadline)
        .B("independent", true);
  }
  // (b) independent + modulo sharing.
  {
    CoupledScheduler scheduler(model, CoupledParams{});
    auto run = scheduler.Run();
    if (!run.ok()) return 1;
    const Allocation& a = run.value().allocation;
    table.AddRow(
        {"independent, modulo-shared",
         std::to_string(a.TotalInstances(t.add)),
         std::to_string(a.TotalInstances(t.mult)),
         std::to_string(a.TotalArea(model.library())),
         std::to_string(deadline + period - 1) + " (grid wait <= " +
             std::to_string(period - 1) + ")",
         "yes"});
    json.AddRow()
        .S("configuration", "independent_modulo")
        .I("adders", a.TotalInstances(t.add))
        .I("multipliers", a.TotalInstances(t.mult))
        .I("area", a.TotalArea(model.library()))
        .I("worst_case_response", deadline + period - 1)
        .B("independent", true);
  }
  // (c) merged + traditional scheduling.
  {
    const ProcessId sources[] = {procs[0], procs[1]};
    auto merged = MergeProcesses(model, sources, "ewf_pair");
    if (!merged.ok()) {
      std::fprintf(stderr, "%s\n", merged.status().ToString().c_str());
      return 1;
    }
    CoupledScheduler scheduler(merged.value(), CoupledParams{});
    auto run = scheduler.Run();
    if (!run.ok()) return 1;
    const Allocation& a = run.value().allocation;
    const ResourceLibrary& lib = merged.value().library();
    table.AddRow(
        {"merged, traditional",
         std::to_string(a.TotalInstances(lib.FindByName("add"))),
         std::to_string(a.TotalInstances(lib.FindByName("mult"))),
         std::to_string(a.TotalArea(lib)),
         std::to_string(2 * deadline - 1) + " (miss one joint start)",
         "no (single activation)"});
    json.AddRow()
        .S("configuration", "merged_traditional")
        .I("adders", a.TotalInstances(lib.FindByName("add")))
        .I("multipliers", a.TotalInstances(lib.FindByName("mult")))
        .I("area", a.TotalArea(lib))
        .I("worst_case_response", 2 * deadline - 1)
        .B("independent", false);
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nexpected shape: merging (c) achieves the best area — with "
              "a single joint activation the scheduler has full temporal "
              "knowledge — but doubles the worst-case event response and "
              "forfeits independence; the modulo method (b) recovers most "
              "of the saving while keeping the processes independently "
              "triggerable. The case merging cannot express at all is a "
              "loop with unbound iteration count next to a reactive "
              "process (see examples/unbound_loop) — exactly the paper's "
              "motivation (section 1.1).\n");
  if (!json_file.empty() && !json.WriteFile(json_file)) return 1;
  return 0;
}
