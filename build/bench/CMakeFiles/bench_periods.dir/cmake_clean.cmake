file(REMOVE_RECURSE
  "CMakeFiles/bench_periods.dir/bench_periods.cpp.o"
  "CMakeFiles/bench_periods.dir/bench_periods.cpp.o.d"
  "bench_periods"
  "bench_periods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_periods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
