// Recursive-descent parser for the behavioral input language.
//
// Grammar (EBNF; '#' and '//' start line comments):
//
//   system    := item*
//   item      := resource | process | share
//   resource  := "resource" IDENT "delay" INT ["dii" INT] "area" INT ";"
//   process   := "process" IDENT ["deadline" INT] "{" block+ "}"
//   block     := "block" IDENT "time" INT ["phase" INT] "{" stmt* "}"
//   stmt      := IDENT "=" rhs ";"
//   rhs       := IDENT op IDENT
//              | IDENT "(" IDENT {"," IDENT} ")" "using" IDENT
//   op        := "+" | "-" | "*" | "/" | "<"
//   share     := "share" IDENT "among" IDENT {"," IDENT}
//                ["period" INT] ";"
//
// Operators map to resource names: + -> add, - -> sub, * -> mult,
// / -> div, < -> cmp. Identifiers used but never assigned in a block are
// its data inputs; every identifier may be assigned at most once per block
// and must be assigned before use (single-assignment dataflow).
#pragma once

#include <string_view>

#include "common/status.h"
#include "frontend/ast.h"

namespace mshls {

/// Parses source text into an AST. Purely syntactic: name resolution and
/// model construction happen in frontend/lowering.h.
[[nodiscard]] StatusOr<AstSystem> ParseSystemText(std::string_view source);

}  // namespace mshls
