// Seeded random system-model generator for the differential fuzzer.
//
// One uint64 seed fully determines a case (all draws go through
// common/rng.h, whose stream is platform-stable), so every fuzz finding is
// reproducible from `<run seed, case index>` alone. The generator sweeps
// the structure space the paper's method lives in: layered DAGs with a
// controllable depth/width/delay mix (pipelined and non-pipelined types),
// multi-block processes, local/global type assignment over random sharing
// groups, eq.-3 compatible periods and start phases, and deadline
// tightness. Two adversarial case classes are produced on purpose:
//  * kInfeasible — a block time range below its critical path; the model
//    must be *rejected cleanly* (typed kInfeasible, no crash);
//  * kGridHostile — a declared period whose grid does not tile a user's
//    time range (legal to schedule, but eq. 2/3 cannot hold); the
//    certifier must flag kGridMisalignment, making the certifier's
//    misdeclaration net a fuzzed negative oracle.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "model/system_model.h"

namespace mshls {

enum class CaseClass {
  kClean,        // valid + eq.-3 compatible: all four oracles must hold
  kInfeasible,   // critical path exceeds a time range: clean rejection
  kGridHostile,  // period does not tile a time range: certifier must flag
};

[[nodiscard]] const char* CaseClassName(CaseClass cls);

struct FuzzGenOptions {
  /// Process-count range (inclusive). The scaling campaign (--fuzz-large)
  /// raises both bounds to reach hierarchical cluster territory.
  int min_processes = 1;
  int max_processes = 3;
  int max_blocks_per_process = 2;
  int min_ops_per_block = 2;
  int max_ops_per_block = 10;
  /// Edge probability between adjacent DAG layers.
  double edge_probability = 0.45;
  /// Share of multiplications in the op mix (delay 2, pipelined).
  double mult_probability = 0.3;
  /// Probability that the library additionally carries a non-pipelined
  /// divider (delay 3 = dii 3) respectively a call-form accumulator type,
  /// and that ops draw them.
  double div_probability = 0.25;
  double acc_probability = 0.2;
  /// Per shareable type: probability of a global assignment (S1) over a
  /// random subset of its users.
  double share_probability = 0.65;
  /// Probability that a block on a non-trivial grid gets a nonzero phase.
  double phase_probability = 0.4;
  /// Probability that a process declares a deadline.
  double deadline_probability = 0.6;
  /// Deadline tightness: slack steps added to the critical path before
  /// rounding the time range up onto the system unit.
  int max_stretch = 8;
  /// Adversarial class rates (checked in this order).
  double infeasible_probability = 0.06;
  double grid_hostile_probability = 0.05;
};

struct GeneratedCase {
  std::uint64_t seed = 0;
  CaseClass cls = CaseClass::kClean;
  SystemModel model;
};

/// Generates one case; deterministic per (seed, options). The model is NOT
/// yet Validate()d — kInfeasible cases would fail — the oracle runner owns
/// validation and its expected verdict.
[[nodiscard]] GeneratedCase GenerateSystem(std::uint64_t seed,
                                           const FuzzGenOptions& options = {});

/// Byte-level corruption of DSL text for the frontend error-path fuzz:
/// truncation, chunk deletion/duplication/swap, byte flips (including
/// non-ASCII) and token-soup insertion. Always returns a changed string
/// unless the input is empty.
[[nodiscard]] std::string MutateText(std::string text, Rng& rng);

}  // namespace mshls
