// Probability / distribution machinery of force-directed scheduling
// (paper §4.1).
//
// An operation whose start is uniformly distributed over its time frame
// [asap, alap] (probability 1/width per start step) occupies its resource
// for `dii` consecutive steps from the start. The *occupancy probability*
// at step t is therefore (number of starts s with s <= t < s+dii) / width.
// The distribution function of a resource type is the sum of the occupancy
// probabilities of all its operations (paper eq. 4).
#pragma once

#include <span>
#include <vector>

#include "common/ids.h"
#include "model/system_model.h"
#include "sched/time_frames.h"

namespace mshls {

/// A real-valued profile over control steps (or over period residues).
using Profile = std::vector<double>;

/// Adds `scale` times the occupancy probability of an op with frame `f` and
/// data-introduction interval `dii` into `p`. `p` must cover f.alap+dii-1.
void AddOccupancyProbability(Profile& p, const TimeFrame& f, int dii,
                             double scale);

/// Distribution function of `type` for one block under `frames`
/// (paper eq. 4), over [0, block.time_range).
[[nodiscard]] Profile BuildTypeProfile(const Block& block,
                                       const ResourceLibrary& lib,
                                       const TimeFrameSet& frames,
                                       ResourceTypeId type);

/// All per-type distribution functions, indexed by resource type id.
[[nodiscard]] std::vector<Profile> BuildAllProfiles(const Block& block,
                                                    const ResourceLibrary& lib,
                                                    const TimeFrameSet& frames);

/// Sum of all values — equals the expected number of busy resource-steps;
/// useful as a conservation check in tests.
[[nodiscard]] double ProfileMass(const Profile& p);

/// Maximum value — the (fractional) resource requirement estimate.
[[nodiscard]] double ProfileMax(const Profile& p);

}  // namespace mshls
