// End-to-end pipeline tests: DSL text -> model -> period search -> coupled
// modulo scheduling -> allocation -> binding -> register allocation ->
// simulation -> RTL. Exercises every public layer of the library together.
#include <gtest/gtest.h>

#include "bind/area_report.h"
#include "bind/binding.h"
#include "frontend/lowering.h"
#include "modulo/baseline.h"
#include "modulo/coupled_scheduler.h"
#include "modulo/period_search.h"
#include "report/experiment_report.h"
#include "rtl/verilog_gen.h"
#include "sim/simulator.h"

namespace mshls {
namespace {

constexpr const char* kReactiveSystem = R"(
# Two reactive sensor pipelines and a control loop sharing one multiplier
# pool and one adder pool. Deadlines chosen so gcds admit period 4.
resource add  delay 1 area 1;
resource sub  delay 1 area 1;
resource mult delay 2 dii 1 area 4;

process sensor_a deadline 8 {
  block filter time 8 {
    m1 = x0 * c0;
    m2 = x1 * c1;
    s1 = m1 + m2;
    m3 = s1 * gain;
    y  = m3 + offset;
  }
}
process sensor_b deadline 8 {
  block filter time 8 {
    m1 = u0 * k0;
    m2 = u1 * k1;
    d  = m1 - m2;
    y  = d + bias;
  }
}
process control deadline 12 {
  block law time 12 {
    e   = ref - meas;
    pm  = e * kp;
    im  = e * ki;
    acc = integ + im;
    u   = pm + acc;
  }
}
share mult among sensor_a, sensor_b, control period 4;
share add  among sensor_a, sensor_b, control period 4;
)";

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto model = CompileSystem(kReactiveSystem);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    model_ = std::move(model).value();
  }

  SystemModel model_;
};

TEST_F(PipelineTest, FullPipelineRuns) {
  // Schedule.
  CoupledScheduler scheduler(model_, CoupledParams{});
  auto result = scheduler.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const CoupledResult& run = result.value();
  EXPECT_TRUE(ValidateSystemSchedule(model_, run.schedule).ok());
  EXPECT_TRUE(
      CheckAllocationCovers(model_, run.schedule, run.allocation).ok());

  // Shared pools exist and beat the local baseline.
  const ResourceTypeId mult = model_.library().FindByName("mult");
  const GlobalTypeAllocation* pool = run.allocation.FindGlobal(mult);
  ASSERT_NE(pool, nullptr);
  EXPECT_LT(pool->instances, 3);  // fewer than one per process

  auto baseline = ScheduleLocalBaseline(model_, CoupledParams{});
  ASSERT_TRUE(baseline.ok());
  EXPECT_LE(run.allocation.TotalArea(model_.library()),
            baseline.value().allocation.TotalArea(model_.library()));

  // Bind.
  auto binding = BindSystem(model_, run.schedule, run.allocation);
  ASSERT_TRUE(binding.ok()) << binding.status().ToString();
  EXPECT_TRUE(ValidateBinding(model_, run.schedule, run.allocation,
                              binding.value())
                  .ok());

  // Registers + area breakdown.
  const AreaBreakdown area = ComputeAreaBreakdown(
      model_, run.schedule, run.allocation, binding.value());
  EXPECT_EQ(area.fu_area, run.allocation.TotalArea(model_.library()));
  EXPECT_GT(area.register_count, 0);
  EXPECT_GT(area.total_area, area.fu_area);

  // Simulate random legal traces.
  SystemSimulator sim(model_, run.schedule, run.allocation);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    TraceOptions options;
    options.seed = seed;
    const auto trace = RandomActivationTrace(model_, options);
    const SimReport report = sim.Run(trace);
    EXPECT_TRUE(report.ok)
        << "seed " << seed << ": "
        << (report.violations.empty() ? "" : report.violations[0].detail);
  }

  // RTL.
  auto design = GenerateRtl(model_, run.schedule, run.allocation,
                            binding.value());
  ASSERT_TRUE(design.ok());
  EXPECT_NE(design.value().source.find("module proc_sensor_a"),
            std::string::npos);
  EXPECT_NE(design.value().source.find("cnt_mult"), std::string::npos);

  // Reports render without crashing and mention every resource.
  const std::string table = RenderTable1(model_, run);
  EXPECT_NE(table.find("mult"), std::string::npos);
  EXPECT_NE(table.find("sensor_a"), std::string::npos);
  const std::string summary = SummarizeAllocation(model_, run.allocation);
  EXPECT_NE(summary.find("area="), std::string::npos);
}

TEST_F(PipelineTest, PeriodSearchImprovesOrMatchesFixedPeriod) {
  CoupledScheduler fixed(model_, CoupledParams{});
  auto fixed_result = fixed.Run();
  ASSERT_TRUE(fixed_result.ok());
  const int fixed_area =
      fixed_result.value().allocation.TotalArea(model_.library());

  auto search = SearchPeriods(model_, CoupledParams{});
  ASSERT_TRUE(search.ok()) << search.status().ToString();
  EXPECT_LE(search.value().area, fixed_area);
  EXPECT_GT(search.value().evaluated, 0);
}

TEST_F(PipelineTest, Table1RendersAuthorizationRows) {
  CoupledScheduler scheduler(model_, CoupledParams{});
  auto result = scheduler.Run();
  ASSERT_TRUE(result.ok());
  const std::string table = RenderTable1(model_, result.value());
  // Global types render the group sum row; local types the per-process
  // counts.
  EXPECT_NE(table.find("all (sum, G)"), std::string::npos);
  EXPECT_NE(table.find("(local)"), std::string::npos);  // sub stays local
  const std::string csv = AllocationCsv(model_, result.value().allocation);
  EXPECT_NE(csv.find("mult,all,global,"), std::string::npos);
  EXPECT_NE(csv.find("area,,,"), std::string::npos);
}

}  // namespace
}  // namespace mshls
