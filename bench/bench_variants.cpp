// Experiment A3 — baseline cross-check (paper §4 heritage): classic FDS
// (Paulin/Knight '89), IFDS (Verhaegh '95) and time-constrained list
// scheduling on the classic benchmark graphs across a deadline sweep.
// Prints one row per (graph, deadline, scheduler): resource mix, area and
// iteration count. The expected shape: force-directed variants match or
// beat the greedy list heuristic on area, IFDS with far fewer evaluations
// than classic FDS.
#include <cstdio>

#include "common/text_table.h"
#include "fds/fds_scheduler.h"
#include "report/bench_json.h"
#include "sched/list_scheduler.h"
#include "workloads/benchmarks.h"

using namespace mshls;

int main(int argc, char** argv) {
  const std::string json_file = TakeJsonFlag(argc, argv);
  BenchJson json("A3", "variants");
  std::printf("== A3: scheduler variants on the classic benchmarks ==\n\n");
  SystemModel model;
  const PaperTypes t = AddPaperTypes(model.library());

  struct Graph {
    const char* name;
    DataFlowGraph (*build)(const PaperTypes&);
    std::vector<int> deadlines;
  };
  const Graph graphs[] = {
      {"ewf", &BuildEwf, {17, 19, 21, 26, 34}},
      {"diffeq", &BuildDiffeq, {8, 10, 12, 15}},
      {"fir16", &BuildFir16, {6, 8, 10, 14}},
      {"ar_lattice", &BuildArLattice, {16, 20, 24}},
  };

  TextTable table;
  table.SetHeader({"graph", "deadline", "scheduler", "add", "sub", "mult",
                   "area", "iters"});
  for (std::size_t c = 1; c < 8; ++c) table.AlignRight(c);

  for (const Graph& graph : graphs) {
    for (int deadline : graph.deadlines) {
      const ProcessId p = model.AddProcess(
          std::string(graph.name) + "_" + std::to_string(deadline));
      const BlockId bid =
          model.AddBlock(p, "b", graph.build(t), deadline);
      if (Status s = model.Validate(); !s.ok()) {
        std::fprintf(stderr, "%s@%d invalid: %s\n", graph.name, deadline,
                     s.ToString().c_str());
        continue;
      }
      const Block& block = model.block(bid);

      auto report = [&](const char* name, const std::vector<int>& usage,
                        int iters) {
        const int area = usage[t.add.index()] * 1 + usage[t.sub.index()] * 1 +
                         usage[t.mult.index()] * 4;
        table.AddRow({graph.name, std::to_string(deadline), name,
                      std::to_string(usage[t.add.index()]),
                      std::to_string(usage[t.sub.index()]),
                      std::to_string(usage[t.mult.index()]),
                      std::to_string(area),
                      iters >= 0 ? std::to_string(iters) : "-"});
        json.AddRow()
            .S("graph", graph.name)
            .I("deadline", deadline)
            .S("scheduler", name)
            .I("adders", usage[t.add.index()])
            .I("subtracters", usage[t.sub.index()])
            .I("multipliers", usage[t.mult.index()])
            .I("area", area)
            .I("iterations", iters);
      };

      if (auto r = ScheduleBlockFds(block, model.library(), {}); r.ok())
        report("fds", r.value().usage, r.value().iterations);
      if (auto r = ScheduleBlockIfds(block, model.library(), {}); r.ok())
        report("ifds", r.value().usage, r.value().iterations);
      if (auto r = ListScheduleTimeConstrained(block, model.library());
          r.ok())
        report("list", r.value().allocation, -1);
      table.AddRule();
    }
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nexpected shape: area falls with looser deadlines; fds/ifds "
              "<= list on area for most rows; EWF@17..21 lands in the "
              "published 2-3 adder / 1-3 pipelined-multiplier band.\n");
  if (!json_file.empty() && !json.WriteFile(json_file)) return 1;
  return 0;
}
