// Experiment A7 — sensitivity of the force model parameters inherited
// from the literature: look-ahead factor eta (Paulin/Knight used 1/3),
// the global spring constant c of Verhaegh's IFDS, the width damping of
// the gradual reduction, and area weighting. The paper's experiment names
// "a lookahead factor" and "a global spring constant" with scan-damaged
// values (§7); this ablation shows how much they matter on the paper
// system, justifying the defaults documented in DESIGN.md.
#include <cstdio>

#include "common/text_table.h"
#include "modulo/coupled_scheduler.h"
#include "report/bench_json.h"
#include "workloads/paper_system.h"

using namespace mshls;

namespace {

int RunWith(const FdsParams& fds, std::string* detail) {
  PaperSystem sys = BuildPaperSystem();
  CoupledParams params;
  params.fds = fds;
  CoupledScheduler scheduler(sys.model, std::move(params));
  auto result = scheduler.Run();
  if (!result.ok()) {
    *detail = result.status().ToString();
    return -1;
  }
  const Allocation& a = result.value().allocation;
  *detail = std::to_string(a.TotalInstances(sys.types.add)) + "/" +
            std::to_string(a.TotalInstances(sys.types.sub)) + "/" +
            std::to_string(a.TotalInstances(sys.types.mult));
  return a.TotalArea(sys.model.library());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_file = TakeJsonFlag(argc, argv);
  BenchJson json("A7", "params");
  std::printf("== A7: force-parameter sensitivity on the paper system ==\n");
  std::printf("(defaults: lookahead 1/3, spring constant 1, damping 0.5, "
              "no area weighting -> area 17)\n\n");

  TextTable table;
  table.SetHeader({"parameter", "value", "add/sub/mult", "area"});
  table.AlignRight(3);

  auto row = [&](const std::string& name, const std::string& value,
                 const FdsParams& fds) {
    std::string detail;
    const int area = RunWith(fds, &detail);
    table.AddRow({name, value, detail,
                  area < 0 ? "fail" : std::to_string(area)});
    json.AddRow()
        .S("parameter", name)
        .S("value", value)
        .S("instances", detail)
        .I("area", area);
  };

  {
    FdsParams fds;
    row("defaults", "-", fds);
  }
  table.AddRule();
  for (double eta : {0.0, 1.0 / 3, 2.0 / 3, 1.0}) {
    FdsParams fds;
    fds.lookahead = eta;
    row("lookahead", FormatDouble(eta, 2), fds);
  }
  table.AddRule();
  for (double c : {0.0, 0.5, 1.0, 3.0}) {
    FdsParams fds;
    fds.global_spring_constant = c;
    row("spring const", FormatDouble(c, 1), fds);
  }
  table.AddRule();
  for (double damp : {0.25, 0.5, 1.0}) {
    FdsParams fds;
    fds.mid_estimate = damp;
    row("width damping", FormatDouble(damp, 2), fds);
  }
  table.AddRule();
  {
    FdsParams fds;
    fds.area_weighting = true;
    row("area weighting", "on", fds);
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nexpected shape: the result is robust around the defaults; "
              "extreme values may trade one adder against a multiplier.\n");
  if (!json_file.empty() && !json.WriteFile(json_file)) return 1;
  return 0;
}
