// SchedulingJob — one unit of work for the concurrent scheduling engine:
// compile (DSL text -> model) -> optional S1/S2 search -> coupled schedule
// -> bind -> validate, with per-job timeout / cancellation and a
// structured result. Jobs are self-contained (they own their input and
// never touch shared mutable state except the opt-in result cache), so a
// JobService can run many of them concurrently on one thread pool.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "common/status.h"
#include "engine/cancel.h"
#include "engine/degradation.h"
#include "model/system_model.h"
#include "modulo/assignment_search.h"
#include "modulo/hierarchy.h"
#include "modulo/period_search.h"
#include "modulo/repair.h"
#include "modulo/schedule_cache.h"

namespace mshls {

enum class JobMode {
  kCoupled,            // schedule the model as declared (S1/S2 from input)
  kSearchPeriods,      // run S2 automatically (period search)
  kSearchAssignments,  // run S1+S2 automatically (scope search)
  kLocalBaseline,      // traditional pure-local comparison run
};

[[nodiscard]] const char* JobModeName(JobMode mode);

/// Turns a SchedulingJob into a *repair* job (modulo/repair.h): instead of
/// solving `source` from scratch, the job treats it as the base system,
/// looks its certified schedule up in the cache tiers by
/// ScheduleCacheKey(base, params), applies the delta and walks the repair
/// ladder. Requires JobMode::kCoupled.
struct RepairRequest {
  /// Sidecar delta text (see ParseDelta); used when `delta` is not preset.
  std::string delta_source;
  /// Pre-parsed delta: skips the parse stage when set.
  std::optional<ModelDelta> delta;
  /// When the base schedule is in no cache tier: true solves the base
  /// first (CLI behaviour — always works, just slower); false fails the
  /// job with kNotFound (daemon behaviour — an evicted/unknown base is a
  /// typed rejection, the client must resubmit a full solve).
  bool solve_base_if_missing = true;
};

struct SchedulingJob {
  /// Display name (batch reports, logs); defaults to "job".
  std::string name = "job";
  /// DSL source text; used when `model` is not preset.
  std::string source;
  /// Pre-compiled model: skips the compile stage when set.
  std::optional<SystemModel> model;

  JobMode mode = JobMode::kCoupled;
  CoupledParams params;
  /// Candidate-set configurator for the search modes: the harmonic default
  /// prunes with utilization lower bounds (winner-identical, fewer
  /// schedules); kExhaustive is the referee enumeration.
  PeriodConfigurator configurator = PeriodConfigurator::kHarmonic;
  /// > 0 routes kCoupled jobs through hierarchical scheduling
  /// (modulo/hierarchy.h) with this cluster-size cap; 0 = flat coupled
  /// run. Ignored by the search/baseline modes and repair jobs.
  int cluster_cap = 0;
  /// Inner fan-out width for the search modes (see the search options).
  int jobs = 1;
  /// Wall-clock budget in ms; 0 = unlimited. Checked between pipeline
  /// stages and once per scheduler iteration.
  long timeout_ms = 0;
  /// Optional external cancellation; may be shared by many jobs.
  std::shared_ptr<CancelToken> cancel;
  /// Optional shared schedule cache.
  ScheduleCache* cache = nullptr;
  /// Optional persistent second cache tier behind `cache` (thread-safe;
  /// see modulo/schedule_cache.h). Lets repeated jobs warm-start across
  /// process restarts.
  ScheduleStore* store = nullptr;
  /// Keep the (possibly rung-modified) model the winning attempt was
  /// scheduled on in JobResult::model — needed by consumers that export
  /// the result (e.g. the serving layer's JSON payload).
  bool keep_model = false;
  /// Run the conflict simulator on the result with this many random
  /// activations per process (0 = skip).
  int simulate_activations = 0;
  /// Run the independent certifier (verify/) on every attempt's result; a
  /// failed certificate fails the attempt with kInternal.
  bool certify = true;
  /// Fallback rungs tried in order when an attempt fails with a degradable
  /// status (see engine/degradation.h). {kAsRequested} disables fallback.
  std::vector<DegradationRung> ladder = DefaultLadder();
  /// Present => this is a repair job; the repair ladder replaces the
  /// degradation ladder above (repairs have their own, always
  /// certificate-gated — see modulo/repair.h).
  std::optional<RepairRequest> repair;
};

struct JobResult {
  std::string name;
  Status status;  // OK iff every stage succeeded
  /// Below fields are meaningful only when status.ok().
  CoupledResult result;
  int area = 0;          // functional-unit area
  double full_area = 0;  // FUs + registers + muxes (from binding)
  long evaluated = 0;    // search candidates scheduled (search modes)
  long clusters = 0;     // hierarchical runs: clusters scheduled (else 0)
  long cache_hits = 0;   // of those, served from the cache
  long store_hits = 0;   // of the cache hits, served from the persistent tier
  double wall_ms = 0;
  /// The model the winning attempt was scheduled on (set only when
  /// job.keep_model and the job succeeded). Shared_ptr: results are copied
  /// around by the batch machinery and models are heavy.
  std::shared_ptr<const SystemModel> model;
  /// Rung that produced the final result (kAsRequested when no fallback
  /// was needed — including failure paths that never entered the ladder).
  DegradationRung rung = DegradationRung::kAsRequested;
  /// Every rung tried, in order, with its outcome; empty when the job
  /// failed before scheduling (e.g. in the compile stage).
  std::vector<RungAttempt> attempts;
  /// Repair jobs only: true when the result came from the repair pipeline,
  /// with the winning repair rung and every repair attempt in order.
  bool repaired = false;
  RepairRung repair_rung = RepairRung::kInPlace;
  std::vector<RepairAttempt> repair_attempts;
};

/// Runs the whole pipeline synchronously on the calling thread. Never
/// throws: worker exceptions (including cancellation) come back as the
/// result's status.
[[nodiscard]] JobResult RunSchedulingJob(const SchedulingJob& job);

}  // namespace mshls
