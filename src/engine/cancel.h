// Cooperative cancellation and wall-clock deadlines for scheduling jobs.
//
// The coupled scheduler has no yield points of its own, but it invokes the
// CoupledObserver once per IFDS iteration; the job runner installs an
// observer that calls CancelToken::Check() there, turning a cancel or an
// expired deadline into a CancelledError that unwinds Run() and is caught
// at the job boundary (converted into kCancelled / kDeadlineExceeded).
#pragma once

#include <atomic>
#include <chrono>
#include <stdexcept>

#include "common/status.h"

namespace mshls {

/// Thrown from scheduler observers to abort a run; never escapes the
/// engine layer (RunSchedulingJob catches it).
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(StatusCode code)
      : std::runtime_error(code == StatusCode::kDeadlineExceeded
                               ? "job deadline exceeded"
                               : "job cancelled"),
        code_(code) {}
  [[nodiscard]] StatusCode code() const { return code_; }

 private:
  StatusCode code_;
};

/// Shared flag + optional deadline. Thread-safe; Cancel() may be called
/// from any thread while a job polls Check() from a worker.
class CancelToken {
 public:
  CancelToken() = default;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Arms a deadline `timeout_ms` from now; <= 0 disarms.
  void SetTimeout(long timeout_ms) {
    if (timeout_ms <= 0) {
      has_deadline_ = false;
      return;
    }
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(timeout_ms);
    has_deadline_ = true;
  }

  /// OK, kCancelled, or kDeadlineExceeded.
  [[nodiscard]] Status Poll() const {
    if (cancelled())
      return Status{StatusCode::kCancelled, "cancelled by caller"};
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_)
      return Status{StatusCode::kDeadlineExceeded, "job timeout expired"};
    return Status::Ok();
  }

  /// Throws CancelledError when cancelled / past deadline. For use inside
  /// observer callbacks where no Status channel exists.
  void Check() const {
    if (Status s = Poll(); !s.ok()) throw CancelledError(s.code());
  }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace mshls
