#include "common/hashing.h"

#include <cstring>

namespace mshls {
namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t FnvByte(std::uint64_t state, unsigned char byte) {
  return (state ^ byte) * kFnvPrime;
}

std::uint64_t Splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

StableHasher& StableHasher::Mix(std::uint64_t value) {
  for (int i = 0; i < 8; ++i)
    state_ = FnvByte(state_, static_cast<unsigned char>(value >> (8 * i)));
  return *this;
}

StableHasher& StableHasher::Mix(double value) {
  if (value == 0.0) value = 0.0;  // canonicalize -0.0
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return Mix(bits);
}

StableHasher& StableHasher::Mix(std::string_view value) {
  Mix(static_cast<std::uint64_t>(value.size()));
  for (char c : value) state_ = FnvByte(state_, static_cast<unsigned char>(c));
  return *this;
}

std::uint64_t StableHasher::Digest() const { return Splitmix64(state_); }

std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t v) {
  return Splitmix64(seed ^ (Splitmix64(v) + 0x9e3779b97f4a7c15ull +
                            (seed << 6) + (seed >> 2)));
}

}  // namespace mshls
