// Experiment F2 — reproduces Figure 2 of the paper (§5.1):
// "Unmodified and first-part modified IFDS algorithm for two iterations".
//
// A block with two operations of one (global) type, time range 4, period 2.
// The unmodified IFDS smooths the block-local distribution and ends up with
// the ops on different residues; the modified algorithm evaluates forces on
// the modulo-maximum transformed distribution, where the "hiding" effect
// rates the aligned placement better, so both ops end on the same residue
// and the other residue class stays free for other processes.
#include <cstdio>

#include "modulo/coupled_scheduler.h"
#include "report/bench_json.h"
#include "workloads/benchmarks.h"

using namespace mshls;

namespace {

struct TraceLog {
  std::vector<CoupledIterationTrace> iterations;
};

CoupledResult Run(SystemModel& model, GlobalForceMode mode, TraceLog* log) {
  CoupledParams params;
  params.mode = mode;
  if (log != nullptr)
    params.observer = [log](const CoupledIterationTrace& t) {
      log->iterations.push_back(t);
    };
  CoupledScheduler scheduler(model, std::move(params));
  auto result = scheduler.Run();
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

void PrintTrace(const char* title, const TraceLog& log,
                const CoupledResult& result) {
  std::printf("--- %s ---\n", title);
  for (const CoupledIterationTrace& it : log.iterations) {
    std::printf("iteration %d:\n", it.iteration);
    for (const CoupledCandidate& c : it.candidates) {
      std::printf("  op%-2d frame [%d,%d]  F(begin)=%+.3f  F(end)=%+.3f%s\n",
                  c.op.value(), c.frame.asap, c.frame.alap, c.force_begin,
                  c.force_end,
                  c.op == it.chosen_op
                      ? (it.shrank_begin ? "  -> drop begin" : "  -> drop end")
                      : "");
    }
  }
  std::printf("final: op0@%d op1@%d  -> residues (lambda=2): %d and %d\n\n",
              result.schedule.of(BlockId{0}).start(OpId{0}),
              result.schedule.of(BlockId{0}).start(OpId{1}),
              result.schedule.of(BlockId{0}).start(OpId{0}) % 2,
              result.schedule.of(BlockId{0}).start(OpId{1}) % 2);
}

SystemModel MakeModel(PaperTypes* out_types) {
  SystemModel model;
  const PaperTypes types = AddPaperTypes(model.library());
  DataFlowGraph g;
  g.AddOp(types.add, "op0");
  g.AddOp(types.add, "op1");
  if (!g.Validate().ok()) std::exit(1);
  const ProcessId p = model.AddProcess("p", 4);
  model.AddBlock(p, "main", std::move(g), 4);
  model.MakeGlobal(types.add, {p});
  model.SetPeriod(types.add, 2);
  if (!model.Validate().ok()) std::exit(1);
  *out_types = types;
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_file = TakeJsonFlag(argc, argv);
  std::printf("== F2: Figure 2 — hiding effect of the modulo-maximum "
              "transform ==\n");
  std::printf("block: 2 ops of one global type, time range 4, period 2\n\n");

  PaperTypes types;
  BenchJson json("F2", "fig2");
  json.params().I("time_range", 4).I("lambda", 2);

  {
    SystemModel model = MakeModel(&types);
    TraceLog log;
    const CoupledResult result =
        Run(model, GlobalForceMode::kIgnoreGlobal, &log);
    PrintTrace("unmodified IFDS (block-local forces)", log, result);
    const int s0 = result.schedule.of(BlockId{0}).start(OpId{0});
    const int s1 = result.schedule.of(BlockId{0}).start(OpId{1});
    json.AddRow()
        .S("mode", "unmodified")
        .I("op0_start", s0)
        .I("op1_start", s1)
        .B("same_residue", s0 % 2 == s1 % 2)
        .I("iterations", result.iterations);
  }
  {
    SystemModel model = MakeModel(&types);
    TraceLog log;
    const CoupledResult result = Run(model, GlobalForceMode::kFull, &log);
    PrintTrace("modified IFDS (modulo-maximum forces, eq. 7/8)", log,
               result);
    const GlobalTypeAllocation* pool = result.allocation.FindGlobal(types.add);
    std::printf("modulo usage profile of the final schedule: [%d %d] — one "
                "residue class is kept free for other processes (paper "
                "Figure 2f).\n",
                pool->profile[0], pool->profile[1]);
    const int s0 = result.schedule.of(BlockId{0}).start(OpId{0});
    const int s1 = result.schedule.of(BlockId{0}).start(OpId{1});
    json.AddRow()
        .S("mode", "modified")
        .I("op0_start", s0)
        .I("op1_start", s1)
        .B("same_residue", s0 % 2 == s1 % 2)
        .I("iterations", result.iterations);
  }
  if (!json_file.empty() && !json.WriteFile(json_file)) return 1;
  return 0;
}
