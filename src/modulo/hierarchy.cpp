#include "modulo/hierarchy.h"

#include <algorithm>
#include <optional>
#include <string>

#include "engine/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "verify/certifier.h"

namespace mshls {
namespace {

constexpr int kDefaultClusterCap = 16;

/// weight[p][q] = number of global pools both processes use. Group members
/// that never issue an op of the type contribute nothing to its profile,
/// so only actual users couple.
std::vector<std::vector<int>> SharingWeights(const SystemModel& model) {
  const std::size_t n = model.process_count();
  std::vector<std::vector<int>> w(n, std::vector<int>(n, 0));
  for (ResourceTypeId g : model.GlobalTypes()) {
    const std::vector<ProcessId> users = model.GlobalUsers(g);
    for (std::size_t i = 0; i < users.size(); ++i)
      for (std::size_t j = i + 1; j < users.size(); ++j) {
        ++w[users[i].index()][users[j].index()];
        ++w[users[j].index()][users[i].index()];
      }
  }
  return w;
}

/// Greedy min-cut-style bisection: grow side A from the lowest-id member
/// by repeatedly pulling the process with the best attachment-to-A minus
/// attachment-to-remainder score (lowest id on ties) until A holds half,
/// then recurse until every part fits the cap. Deterministic by
/// construction.
void SplitComponent(std::vector<int> part,
                    const std::vector<std::vector<int>>& w, int cap,
                    std::vector<std::vector<int>>& out) {
  if (static_cast<int>(part.size()) <= cap) {
    out.push_back(std::move(part));
    return;
  }
  const std::size_t half = (part.size() + 1) / 2;
  std::vector<char> in_a(w.size(), 0);
  std::vector<int> a{part[0]};
  in_a[static_cast<std::size_t>(part[0])] = 1;
  while (a.size() < half) {
    int best = -1;
    long best_score = 0;
    for (int c : part) {
      if (in_a[static_cast<std::size_t>(c)]) continue;
      long score = 0;
      for (int x : part) {
        if (x == c) continue;
        const int wcx = w[static_cast<std::size_t>(c)]
                         [static_cast<std::size_t>(x)];
        score += in_a[static_cast<std::size_t>(x)] ? wcx : -wcx;
      }
      if (best < 0 || score > best_score) {
        best = c;
        best_score = score;
      }
    }
    a.push_back(best);
    in_a[static_cast<std::size_t>(best)] = 1;
  }
  std::vector<int> b;
  for (int c : part)
    if (!in_a[static_cast<std::size_t>(c)]) b.push_back(c);
  std::sort(a.begin(), a.end());
  SplitComponent(std::move(a), w, cap, out);
  SplitComponent(std::move(b), w, cap, out);
}

/// One cluster's sub-model plus the mapping back to full-model block ids
/// (sub-model block index i corresponds to block_map[i]).
struct ClusterModel {
  SystemModel model;
  std::vector<BlockId> block_map;
  std::vector<char> member;  // by full-model process index
};

ClusterModel BuildClusterModel(const SystemModel& full,
                               const std::vector<ProcessId>& cluster) {
  ClusterModel out;
  out.model.library() = full.library();
  out.member.assign(full.process_count(), 0);
  std::vector<ProcessId> pmap(full.process_count(), ProcessId::invalid());
  for (ProcessId pid : cluster) {
    const Process& p = full.process(pid);
    const ProcessId np = out.model.AddProcess(p.name, p.deadline);
    pmap[pid.index()] = np;
    out.member[pid.index()] = 1;
    for (BlockId bid : p.blocks) {
      const Block& b = full.block(bid);
      DataFlowGraph graph = b.graph;
      out.model.AddBlock(np, b.name, std::move(graph), b.time_range,
                         b.phase);
      out.block_map.push_back(bid);
    }
  }
  // Global groups intersect with the cluster; a singleton intersection
  // STAYS global (same period), so every member process keeps the exact
  // G_p set — and therefore the exact eq.-3 grid spacing and time frames —
  // it has in the full model. That is what makes per-block schedules
  // transfer verbatim into the stitched system.
  for (ResourceTypeId t : full.GlobalTypes()) {
    std::vector<ProcessId> group;
    for (ProcessId pid : full.assignment(t).group)
      if (pid.index() < pmap.size() && pmap[pid.index()].valid())
        group.push_back(pmap[pid.index()]);
    if (group.empty()) continue;
    out.model.MakeGlobal(t, std::move(group));
    out.model.SetPeriod(t, full.assignment(t).period);
  }
  return out;
}

/// Cluster-scoped copy of the caller's params: no tracing/observing from
/// fan-out workers, pinned rows remapped onto the sub-model's block ids.
CoupledParams ClusterParams(const CoupledParams& base,
                            const ClusterModel& cm) {
  CoupledParams p = base;
  p.observer = nullptr;
  p.trace = false;
  p.external_demand.clear();
  if (!base.pinned_starts.empty()) {
    p.pinned_starts.assign(cm.block_map.size(), {});
    bool any = false;
    for (std::size_t j = 0; j < cm.block_map.size(); ++j) {
      const std::size_t full_index = cm.block_map[j].index();
      if (full_index < base.pinned_starts.size() &&
          !base.pinned_starts[full_index].empty()) {
        p.pinned_starts[j] = base.pinned_starts[full_index];
        any = true;
      }
    }
    if (!any) p.pinned_starts.clear();
  }
  return p;
}

/// Schedules one cluster through the cache tiers and gates the result on
/// the certifier (against the cluster's own sub-model).
StatusOr<CoupledResult> RunCluster(ClusterModel& cm, CoupledParams params,
                                   const HierarchyOptions& options) {
  auto run_or = ScheduleWithCache(cm.model, params, options.cache, nullptr,
                                  options.store, nullptr);
  if (!run_or.ok()) return run_or.status();
  const CertificateReport cert = CertifySchedule(
      cm.model, run_or.value().schedule, run_or.value().allocation);
  if (!cert.ok())
    return Status{StatusCode::kInternal,
                  "cluster schedule failed certification: " +
                      cert.Summary()};
  return run_or;
}

}  // namespace

std::vector<std::vector<ProcessId>> PartitionSharingGraph(
    const SystemModel& model, int max_cluster_processes) {
  const int cap =
      max_cluster_processes > 0 ? max_cluster_processes : kDefaultClusterCap;
  const std::size_t n = model.process_count();
  const std::vector<std::vector<int>> w = SharingWeights(model);

  std::vector<char> visited(n, 0);
  std::vector<std::vector<int>> parts;
  for (std::size_t start = 0; start < n; ++start) {
    if (visited[start]) continue;
    // BFS component from the lowest unvisited id.
    std::vector<int> component;
    std::vector<int> frontier{static_cast<int>(start)};
    visited[start] = 1;
    while (!frontier.empty()) {
      const int p = frontier.back();
      frontier.pop_back();
      component.push_back(p);
      for (std::size_t q = 0; q < n; ++q) {
        if (visited[q] || w[static_cast<std::size_t>(p)][q] == 0) continue;
        visited[q] = 1;
        frontier.push_back(static_cast<int>(q));
      }
    }
    std::sort(component.begin(), component.end());
    SplitComponent(std::move(component), w, cap, parts);
  }

  std::vector<std::vector<ProcessId>> out;
  out.reserve(parts.size());
  for (const std::vector<int>& part : parts) {
    std::vector<ProcessId> cluster;
    cluster.reserve(part.size());
    for (int p : part) cluster.push_back(ProcessId{p});
    out.push_back(std::move(cluster));
  }
  return out;
}

StatusOr<HierarchicalResult> ScheduleHierarchical(
    const SystemModel& model, const CoupledParams& params,
    const HierarchyOptions& options) {
  if (!params.external_demand.empty())
    return Status{StatusCode::kInvalidArgument,
                  "external_demand is managed by the reconciliation pass "
                  "and must be empty on entry"};

  HierarchicalResult result;
  const std::vector<std::vector<ProcessId>> partition =
      PartitionSharingGraph(model, options.max_cluster_processes);
  const std::size_t n = partition.size();
  result.stats.clusters = static_cast<long long>(n);

  obs::TraceTrack* track = nullptr;
  if (obs::Tracer* tracer = obs::GlobalTracer())
    track = &tracer->NewTrack("hierarchy");
  obs::ScopedSpan run_span(
      track, "hierarchy.run",
      obs::TraceArgs()
          .I("processes", static_cast<long long>(model.process_count()))
          .I("clusters", static_cast<long long>(n))
          .Json());

  std::vector<ClusterModel> cms;
  cms.reserve(n);
  for (const std::vector<ProcessId>& cluster : partition)
    cms.push_back(BuildClusterModel(model, cluster));

  // Round 1: schedule every cluster independently, certified per cluster.
  std::vector<std::optional<CoupledResult>> runs(n);
  std::optional<ThreadPool> pool;
  if (options.jobs > 1 && n > 1) pool.emplace(options.jobs);
  Status fan_out = ParallelFor(
      pool ? &*pool : nullptr, n, [&](std::size_t i) -> Status {
        auto run_or =
            RunCluster(cms[i], ClusterParams(params, cms[i]), options);
        if (!run_or.ok()) return run_or.status();
        runs[i] = std::move(run_or).value();
        return Status::Ok();
      });
  if (!fan_out.ok()) return fan_out;
  result.stats.certified += static_cast<long long>(n);

  // Stitch: per-block schedules transfer verbatim (identical graphs, time
  // ranges, phases and grid spacing); the allocation is re-derived on the
  // FULL model so cross-cluster pools size to the true summed demand.
  auto stitch = [&](const std::vector<std::optional<CoupledResult>>& rs) {
    SystemSchedule s;
    s.blocks.resize(model.block_count());
    for (std::size_t ci = 0; ci < n; ++ci)
      for (std::size_t j = 0; j < cms[ci].block_map.size(); ++j)
        s.of(cms[ci].block_map[j]) = rs[ci]->schedule.blocks[j];
    return s;
  };
  SystemSchedule stitched = stitch(runs);
  if (Status s = ValidateSystemSchedule(model, stitched); !s.ok()) return s;
  Allocation allocation = ComputeAllocation(model, stitched);
  int area = allocation.TotalArea(model.library());

  // Cut pools: global types whose users span clusters. Only these can
  // benefit from reconciliation.
  std::vector<int> cluster_of(model.process_count(), -1);
  for (std::size_t ci = 0; ci < n; ++ci)
    for (ProcessId pid : partition[ci])
      cluster_of[pid.index()] = static_cast<int>(ci);
  std::vector<ResourceTypeId> cut_types;
  for (ResourceTypeId g : model.GlobalTypes()) {
    const std::vector<ProcessId> users = model.GlobalUsers(g);
    bool spans = false;
    for (std::size_t u = 1; u < users.size() && !spans; ++u)
      spans = cluster_of[users[u].index()] != cluster_of[users[0].index()];
    if (spans) cut_types.push_back(g);
  }
  result.stats.cut_types = static_cast<long long>(cut_types.size());

  std::vector<char> reconciled(n, 0);
  for (int round = 0; round < options.reconcile_rounds && !cut_types.empty();
       ++round) {
    ++result.stats.reconcile_rounds;
    // Jacobi step: every cluster sees the residue demand the OTHER
    // clusters put on each cut pool in the CURRENT stitched allocation —
    // the per-user authorization tables give it exactly.
    std::vector<std::vector<Profile>> external(n);
    std::vector<std::size_t> affected;
    for (std::size_t ci = 0; ci < n; ++ci) {
      std::vector<Profile> ext(model.library().size());
      bool any = false;
      for (ResourceTypeId g : cut_types) {
        const GlobalTypeAllocation* ga = allocation.FindGlobal(g);
        if (ga == nullptr) continue;
        bool cluster_uses = false;
        Profile demand(static_cast<std::size_t>(ga->period), 0.0);
        bool nonzero = false;
        for (std::size_t u = 0; u < ga->users.size(); ++u) {
          if (cms[ci].member[ga->users[u].index()]) {
            cluster_uses = true;
            continue;
          }
          for (std::size_t tau = 0; tau < demand.size(); ++tau) {
            demand[tau] += static_cast<double>(ga->authorization[u][tau]);
            nonzero = nonzero || ga->authorization[u][tau] != 0;
          }
        }
        if (!cluster_uses || !nonzero) continue;
        ext[g.index()] = std::move(demand);
        any = true;
      }
      if (!any) continue;
      external[ci] = std::move(ext);
      affected.push_back(ci);
    }
    if (affected.empty()) break;

    std::vector<std::optional<CoupledResult>> reruns(n);
    std::optional<ThreadPool> round_pool;
    if (options.jobs > 1 && affected.size() > 1)
      round_pool.emplace(options.jobs);
    Status round_status = ParallelFor(
        round_pool ? &*round_pool : nullptr, affected.size(),
        [&](std::size_t j) -> Status {
          const std::size_t ci = affected[j];
          CoupledParams p = ClusterParams(params, cms[ci]);
          p.external_demand = external[ci];
          auto run_or = RunCluster(cms[ci], std::move(p), options);
          if (!run_or.ok()) return run_or.status();
          reruns[ci] = std::move(run_or).value();
          return Status::Ok();
        });
    if (!round_status.ok()) return round_status;
    result.stats.certified += static_cast<long long>(affected.size());

    // Adoption in canonical cluster order: keep a re-schedule only when it
    // strictly improves the stitched full-model area. Greedy and
    // deterministic; rejected candidates leave no trace in the result.
    long long adopted_this_round = 0;
    for (std::size_t ci : affected) {
      std::optional<CoupledResult> saved = std::move(runs[ci]);
      runs[ci] = std::move(reruns[ci]);
      SystemSchedule trial = stitch(runs);
      Allocation trial_allocation = ComputeAllocation(model, trial);
      const int trial_area = trial_allocation.TotalArea(model.library());
      if (trial_area < area) {
        stitched = std::move(trial);
        allocation = std::move(trial_allocation);
        area = trial_area;
        reconciled[ci] = 1;
        ++adopted_this_round;
      } else {
        runs[ci] = std::move(saved);
      }
    }
    result.stats.reconcile_adopted += adopted_this_round;
    if (adopted_this_round == 0) break;
  }

  // Final gate: the stitched system schedule must certify against the
  // full model (eq. 1/2/3, dependences, occupancy) before it is returned.
  const CertificateReport cert = CertifySchedule(model, stitched, allocation);
  if (!cert.ok())
    return Status{StatusCode::kInternal,
                  "stitched schedule failed certification: " +
                      cert.Summary()};
  ++result.stats.certified;

  result.schedule = std::move(stitched);
  result.allocation = std::move(allocation);
  result.area = area;
  result.clusters.resize(n);
  for (std::size_t ci = 0; ci < n; ++ci) {
    ClusterInfo& info = result.clusters[ci];
    info.processes = partition[ci];
    info.area = runs[ci]->allocation.TotalArea(model.library());
    info.iterations = runs[ci]->iterations;
    info.reconciled = reconciled[ci] != 0;
    result.stats.cluster_iterations += runs[ci]->iterations;
    result.iterations = std::max(result.iterations, info.iterations);
    if (track != nullptr)
      track->Instant("cluster",
                     obs::TraceArgs()
                         .I("index", static_cast<long long>(ci))
                         .I("processes",
                            static_cast<long long>(info.processes.size()))
                         .I("area", info.area)
                         .I("iterations", info.iterations)
                         .I("reconciled", info.reconciled ? 1 : 0)
                         .Json());
  }

  if (obs::Enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    const obs::MetricKind kS = obs::MetricKind::kStable;
    reg.GetCounter("hierarchy.clusters", kS).Add(result.stats.clusters);
    reg.GetCounter("hierarchy.cut_types", kS).Add(result.stats.cut_types);
    reg.GetCounter("hierarchy.reconcile_rounds", kS)
        .Add(result.stats.reconcile_rounds);
    reg.GetCounter("hierarchy.reconcile_adopted", kS)
        .Add(result.stats.reconcile_adopted);
    reg.GetCounter("hierarchy.cluster_iterations", kS)
        .Add(result.stats.cluster_iterations);
    reg.GetCounter("hierarchy.certified", kS).Add(result.stats.certified);
  }
  return result;
}

}  // namespace mshls
