file(REMOVE_RECURSE
  "CMakeFiles/mshlsc.dir/mshlsc.cpp.o"
  "CMakeFiles/mshlsc.dir/mshlsc.cpp.o.d"
  "mshlsc"
  "mshlsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mshlsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
