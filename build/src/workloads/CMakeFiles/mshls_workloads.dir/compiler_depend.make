# Empty compiler generated dependencies file for mshls_workloads.
# This may be replaced when dependencies are built.
