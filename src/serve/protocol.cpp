#include "serve/protocol.h"

#include "engine/degradation.h"
#include "report/json_export.h"
#include "serve/wire.h"

namespace mshls::serve {
namespace {

constexpr std::uint8_t kMaxMode =
    static_cast<std::uint8_t>(JobMode::kLocalBaseline);

}  // namespace

const char* ServeStatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk: return "ok";
    case ServeStatus::kJobFailed: return "job-failed";
    case ServeStatus::kOverloaded: return "overloaded";
    case ServeStatus::kTooLarge: return "too-large";
    case ServeStatus::kMalformedFrame: return "malformed-frame";
    case ServeStatus::kShuttingDown: return "shutting-down";
    case ServeStatus::kUnknownBase: return "unknown-base";
  }
  return "unknown";
}

bool IsRejection(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOverloaded:
    case ServeStatus::kTooLarge:
    case ServeStatus::kMalformedFrame:
    case ServeStatus::kShuttingDown:
    case ServeStatus::kUnknownBase:
      return true;
    case ServeStatus::kOk:
    case ServeStatus::kJobFailed:
      return false;
  }
  return false;
}

std::string EncodeRequest(const ServeRequest& request) {
  std::string out;
  out.reserve(24 + request.source.size());
  PutU32(out, kRequestMagic);
  PutU32(out, kProtocolVersion);
  out.push_back(static_cast<char>(request.mode));
  out.push_back(static_cast<char>(request.flags));
  out.push_back(0);
  out.push_back(0);
  PutU32(out, request.timeout_ms);
  PutU32(out, static_cast<std::uint32_t>(request.source.size()));
  out.append(request.source);
  PutU32(out, static_cast<std::uint32_t>(request.delta.size()));
  out.append(request.delta);
  return out;
}

StatusOr<ServeRequest> DecodeRequest(std::string_view frame) {
  std::size_t cursor = 0;
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  if (!GetU32(frame, cursor, &magic) || magic != kRequestMagic)
    return Status{StatusCode::kInvalidArgument, "bad request magic"};
  if (!GetU32(frame, cursor, &version) || version < kMinRequestVersion ||
      version > kProtocolVersion)
    return Status{StatusCode::kInvalidArgument,
                  "unsupported protocol version " + std::to_string(version)};
  if (cursor + 4 > frame.size())
    return Status{StatusCode::kInvalidArgument, "truncated request header"};
  const std::uint8_t mode = static_cast<std::uint8_t>(frame[cursor++]);
  const std::uint8_t flags = static_cast<std::uint8_t>(frame[cursor++]);
  cursor += 2;  // reserved
  if (mode > kMaxMode)
    return Status{StatusCode::kInvalidArgument,
                  "unknown job mode " + std::to_string(mode)};
  ServeRequest request;
  request.mode = static_cast<JobMode>(mode);
  request.flags = flags;
  std::uint32_t source_len = 0;
  if (!GetU32(frame, cursor, &request.timeout_ms) ||
      !GetU32(frame, cursor, &source_len))
    return Status{StatusCode::kInvalidArgument, "truncated request header"};
  if (frame.size() - cursor < source_len)
    return Status{StatusCode::kInvalidArgument,
                  "request source length mismatch (declared " +
                      std::to_string(source_len) + ", have " +
                      std::to_string(frame.size() - cursor) + ")"};
  if (source_len == 0)
    return Status{StatusCode::kInvalidArgument, "empty job source"};
  request.source.assign(frame.substr(cursor, source_len));
  cursor += source_len;
  if (version >= 2) {
    std::uint32_t delta_len = 0;
    if (!GetU32(frame, cursor, &delta_len) ||
        frame.size() - cursor != delta_len)
      return Status{StatusCode::kInvalidArgument,
                    "request delta length mismatch"};
    request.delta.assign(frame.substr(cursor, delta_len));
  } else if (cursor != frame.size()) {
    // v1 frames end right after the source bytes.
    return Status{StatusCode::kInvalidArgument,
                  "request source length mismatch (declared " +
                      std::to_string(source_len) + ", have " +
                      std::to_string(frame.size() - (cursor - source_len)) +
                      ")"};
  }
  return request;
}

std::string EncodeResponse(const ServeResponse& response) {
  std::string out;
  out.reserve(32 + response.payload.size());
  PutU32(out, kResponseMagic);
  PutU32(out, kProtocolVersion);
  out.push_back(static_cast<char>(response.status));
  out.push_back(static_cast<char>(response.rung));
  out.push_back(0);
  out.push_back(0);
  PutU32(out, response.evaluated);
  PutU32(out, response.cache_hits);
  PutU32(out, response.store_hits);
  PutU32(out, static_cast<std::uint32_t>(response.payload.size()));
  out.append(response.payload);
  return out;
}

StatusOr<ServeResponse> DecodeResponse(std::string_view frame) {
  std::size_t cursor = 0;
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  if (!GetU32(frame, cursor, &magic) || magic != kResponseMagic)
    return Status{StatusCode::kInvalidArgument, "bad response magic"};
  if (!GetU32(frame, cursor, &version) || version != kProtocolVersion)
    return Status{StatusCode::kInvalidArgument,
                  "unsupported protocol version " + std::to_string(version)};
  if (cursor + 4 > frame.size())
    return Status{StatusCode::kInvalidArgument, "truncated response header"};
  const std::uint8_t status = static_cast<std::uint8_t>(frame[cursor++]);
  const std::uint8_t rung = static_cast<std::uint8_t>(frame[cursor++]);
  cursor += 2;  // reserved
  if (status > static_cast<std::uint8_t>(ServeStatus::kUnknownBase))
    return Status{StatusCode::kInvalidArgument,
                  "unknown response status " + std::to_string(status)};
  ServeResponse response;
  response.status = static_cast<ServeStatus>(status);
  response.rung = rung;
  std::uint32_t payload_len = 0;
  if (!GetU32(frame, cursor, &response.evaluated) ||
      !GetU32(frame, cursor, &response.cache_hits) ||
      !GetU32(frame, cursor, &response.store_hits) ||
      !GetU32(frame, cursor, &payload_len) ||
      frame.size() - cursor != payload_len)
    return Status{StatusCode::kInvalidArgument,
                  "response payload length mismatch"};
  response.payload.assign(frame.substr(cursor));
  return response;
}

std::string RenderJobPayload(const JobResult& result) {
  std::string out = "{\"schema\":\"mshls-serve-v1\"";
  out += ",\"name\":\"" + JsonEscape(result.name) + "\"";
  out += ",\"rung\":\"";
  out += result.repaired ? RepairRungName(result.repair_rung)
                         : DegradationRungName(result.rung);
  out += "\"";
  if (result.repaired) out += ",\"repaired\":true";
  out += ",\"area\":" + std::to_string(result.area);
  out += ",\"evaluated\":" + std::to_string(result.evaluated);
  if (result.clusters > 0)
    out += ",\"clusters\":" + std::to_string(result.clusters);
  if (result.model != nullptr) {
    out += ",\"result\":";
    out += ResultToJson(*result.model, result.result);
  }
  out += "}";
  return out;
}

}  // namespace mshls::serve
