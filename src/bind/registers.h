// Value lifetime analysis and left-edge register allocation.
//
// Every operation result is a value born when its producer finishes
// (start + delay) and dying when the last consumer has read it (consumer
// start + 1); results of sink operations are block outputs and live
// beyond the block's time range so they stay observable after completion.
// Registers are assigned per process with the classic left-edge rule;
// blocks of one process share one register file because they never
// execute concurrently (condition C2).
#pragma once

#include <vector>

#include "common/ids.h"
#include "modulo/allocation.h"

namespace mshls {

struct ValueLifetime {
  OpId producer;
  int birth = 0;  // first step the value exists
  int death = 0;  // first step the value is no longer needed (exclusive)
};

/// Lifetimes of all values of a block, by producer op id order.
[[nodiscard]] std::vector<ValueLifetime> ComputeLifetimes(
    const Block& block, const ResourceLibrary& lib,
    const BlockSchedule& schedule);

struct BlockRegisterAllocation {
  int register_count = 0;
  /// reg_of[op] — register holding op's result; invalid if the value has
  /// zero-length lifetime (never the case with death > birth).
  std::vector<RegisterId> reg_of;
};

/// Left-edge allocation: minimal register count for the given lifetimes.
[[nodiscard]] BlockRegisterAllocation AllocateRegisters(
    const std::vector<ValueLifetime>& lifetimes);

struct ProcessRegisterReport {
  ProcessId process;
  int register_count = 0;  // max over the process' blocks
};

/// Registers per process for a complete system schedule.
[[nodiscard]] std::vector<ProcessRegisterReport> AllocateSystemRegisters(
    const SystemModel& model, const SystemSchedule& schedule);

}  // namespace mshls
