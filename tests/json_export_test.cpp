#include <gtest/gtest.h>

#include "bind/binding.h"
#include "modulo/coupled_scheduler.h"
#include "modulo/schedule_cache.h"
#include "report/json_export.h"
#include "workloads/benchmarks.h"

namespace mshls {
namespace {

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

class JsonExportTest : public ::testing::Test {
 protected:
  SystemModel model_;
  PaperTypes types_ = AddPaperTypes(model_.library());
  CoupledResult result_;

  void SetUp() override {
    std::vector<ProcessId> procs;
    for (int i = 0; i < 2; ++i) {
      DataFlowGraph g;
      const OpId a = g.AddOp(types_.add, "a");
      const OpId m = g.AddOp(types_.mult, "m");
      g.AddEdge(a, m);
      ASSERT_TRUE(g.Validate().ok());
      const ProcessId p = model_.AddProcess("p" + std::to_string(i), 8);
      model_.AddBlock(p, "b" + std::to_string(i), std::move(g), 8);
      procs.push_back(p);
    }
    model_.MakeGlobal(types_.mult, procs);
    model_.SetPeriod(types_.mult, 4);
    ASSERT_TRUE(model_.Validate().ok());
    CoupledScheduler scheduler(model_, CoupledParams{});
    auto result = scheduler.Run();
    ASSERT_TRUE(result.ok());
    result_ = std::move(result).value();
  }

  /// Extremely small structural well-formedness check: balanced braces
  /// and brackets outside of strings.
  static bool Balanced(const std::string& json) {
    int depth = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
      const char c = json[i];
      if (in_string) {
        if (c == '\\') ++i;
        else if (c == '"') in_string = false;
        continue;
      }
      if (c == '"') in_string = true;
      else if (c == '{' || c == '[') ++depth;
      else if (c == '}' || c == ']') --depth;
      if (depth < 0) return false;
    }
    return depth == 0 && !in_string;
  }
};

TEST_F(JsonExportTest, ResultJsonIsBalancedAndComplete) {
  const std::string json = ResultToJson(model_, result_);
  EXPECT_TRUE(Balanced(json)) << json;
  EXPECT_NE(json.find("\"processes\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"p0\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"mult\""), std::string::npos);
  EXPECT_NE(json.find("\"period\":4"), std::string::npos);
  EXPECT_NE(json.find("\"authorization\":["), std::string::npos);
  EXPECT_NE(json.find("\"area\":"), std::string::npos);
  EXPECT_NE(json.find("\"iterations\":"), std::string::npos);
  // Local adders appear as local allocations.
  EXPECT_NE(json.find("\"local\":[{\"process\":\"p0\",\"type\":\"add\""),
            std::string::npos);
}

TEST_F(JsonExportTest, ScheduleStartsMatch) {
  const std::string json = ResultToJson(model_, result_);
  // Every op's start value appears as emitted by the scheduler.
  for (const Block& b : model_.blocks()) {
    for (const Operation& op : b.graph.ops()) {
      const std::string needle =
          "\"name\":\"" + op.name + "\",\"type\":\"" +
          model_.library().type(op.type).name + "\",\"start\":" +
          std::to_string(result_.schedule.of(b.id).start(op.id));
      EXPECT_NE(json.find(needle), std::string::npos) << needle;
    }
  }
}

TEST_F(JsonExportTest, StatsBlockRoundTripsEngineCounters) {
  const std::string json = ResultToJson(model_, result_);
  // The scheduler populates its CoupledStats unconditionally; the export
  // must carry the exact values so a reader recovers the engine accounting
  // of the run that produced the result.
  const CoupledStats& s = result_.stats;
  EXPECT_GT(s.iterations, 0);
  EXPECT_GT(s.candidates_evaluated, 0);
  const std::string needle =
      "\"stats\":{\"iterations\":" + std::to_string(s.iterations) +
      ",\"candidates_evaluated\":" + std::to_string(s.candidates_evaluated) +
      ",\"candidates_repriced\":" + std::to_string(s.candidates_repriced) +
      ",\"candidates_reused\":" + std::to_string(s.candidates_reused) +
      ",\"tier1_invalidations\":" + std::to_string(s.tier1_invalidations) +
      ",\"tier2_invalidations\":" + std::to_string(s.tier2_invalidations) +
      "}";
  EXPECT_NE(json.find(needle), std::string::npos) << json;
}

TEST_F(JsonExportTest, StatsBlockSurvivesTheScheduleCache) {
  // A cache replay must report the original run's stats, not zeros.
  ScheduleCache cache;
  CoupledParams params;
  auto first = ScheduleWithCache(model_, params, &cache);
  ASSERT_TRUE(first.ok());
  auto replay = ScheduleWithCache(model_, params, &cache);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(replay.value().stats.candidates_evaluated,
            first.value().stats.candidates_evaluated);
  EXPECT_EQ(ResultToJson(model_, replay.value()),
            ResultToJson(model_, first.value()));
}

TEST_F(JsonExportTest, BindingJsonListsAllInstancesAndOps) {
  auto binding = BindSystem(model_, result_.schedule, result_.allocation);
  ASSERT_TRUE(binding.ok());
  const std::string json = BindingToJson(model_, binding.value());
  EXPECT_TRUE(Balanced(json)) << json;
  for (const InstanceInfo& info : binding.value().instances)
    EXPECT_NE(json.find("\"name\":\"" + info.name + "\""),
              std::string::npos);
  // 4 ops bound in total (2 per block).
  int count = 0;
  for (std::size_t pos = 0;
       (pos = json.find("\"instance\":", pos)) != std::string::npos; ++pos)
    ++count;
  EXPECT_EQ(count, 4);
  EXPECT_NE(json.find("\"global\":true"), std::string::npos);
  EXPECT_NE(json.find("\"owner\":\"p0\""), std::string::npos);
}

}  // namespace
}  // namespace mshls
