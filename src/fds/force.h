// Spring/force model (paper §4.2, eq. 5/6) with the IFDS refinements of
// Verhaegh et al. (look-ahead and global spring constants).
//
// A distribution value q(t) acts as a spring whose constant equals the
// value itself; displacing the distribution by dq(t) costs a force of
// q(t)*dq(t) (Hooke). The refinements:
//  * look-ahead factor eta: the spring constant anticipates a fraction of
//    the displacement, q(t) + eta*dq(t) (Paulin/Knight used eta = 1/3);
//  * global spring constant c: a constant stiffness added to every spring
//    so that empty distribution regions still resist displacement;
//  * optional area weighting: forces of a type scaled by its area cost so
//    that expensive units dominate trade-offs (off by default — classic
//    FDS/IFDS weights all types equally).
#pragma once

#include <functional>
#include <span>

#include "fds/distribution.h"

namespace mshls {

struct FdsParams {
  /// Look-ahead factor eta in F = sum (q + c + eta*dq) * dq.
  double lookahead = 1.0 / 3.0;
  /// Global spring constant c (uniform stiffness floor).
  double global_spring_constant = 1.0;
  /// Scale each type's force by its area cost.
  bool area_weighting = false;
  /// IFDS gradual reduction: when a frame allows more than two placements
  /// the end-point force difference only estimates the interior, so it is
  /// damped by this factor (paper §4.2, last paragraph).
  double mid_estimate = 0.5;
};

/// Force of displacing distribution `q` by `dq` (same length), scaled by
/// `type_weight`. Negative force = better smoothing (paper §4.2).
[[nodiscard]] double SpringForce(std::span<const double> q,
                                 std::span<const double> dq,
                                 const FdsParams& params, double type_weight);

/// Weight of a resource type under `params` (1 or its area).
[[nodiscard]] double TypeWeight(const ResourceLibrary& lib, ResourceTypeId t,
                                const FdsParams& params);

}  // namespace mshls
