#include "modulo/assignment_search.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <optional>

#include "engine/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mshls {
namespace {

int Popcount(long m) {
  int c = 0;
  while (m) {
    c += static_cast<int>(m & 1);
    m >>= 1;
  }
  return c;
}

/// Largest period that tiles every user's block time ranges: their gcd.
int CompatiblePeriod(const SystemModel& model,
                     const std::vector<ProcessId>& users) {
  std::int64_t g = 0;
  for (ProcessId pid : users)
    for (BlockId bid : model.process(pid).blocks)
      g = std::gcd(g, static_cast<std::int64_t>(
                          model.block(bid).time_range));
  return g == 0 ? 1 : static_cast<int>(g);
}

}  // namespace

StatusOr<AssignmentSearchResult> SearchAssignments(
    SystemModel& model, const CoupledParams& params,
    const AssignmentSearchOptions& options) {
  // Shareable types: used by >= 2 processes.
  struct Shareable {
    ResourceTypeId type;
    std::vector<ProcessId> users;
    int period;
  };
  std::vector<Shareable> shareable;
  for (const ResourceType& t : model.library().types()) {
    std::vector<ProcessId> users;
    for (const Process& p : model.processes())
      if (model.ProcessUsesType(p.id, t.id)) users.push_back(p.id);
    if (users.size() >= 2) {
      const int period = CompatiblePeriod(model, users);
      shareable.push_back({t.id, std::move(users), period});
    }
  }
  if (shareable.empty())
    return Status{StatusCode::kFailedPrecondition,
                  "no resource type is used by more than one process"};
  if (shareable.size() > 20)
    return Status{StatusCode::kInvalidArgument,
                  "too many shareable types for exhaustive scope search"};

  AssignmentSearchResult result;
  result.combinations = 1L << shareable.size();

  // Fixed work list: masks in ascending order, capped like the original
  // interleaved loop (every mask is scheduled, so the cap is a prefix).
  long mask_count = result.combinations;
  if (options.max_evaluations > 0 &&
      mask_count > static_cast<long>(options.max_evaluations))
    mask_count = options.max_evaluations;

  const auto apply_mask = [&shareable](SystemModel& m, long mask) {
    for (std::size_t i = 0; i < shareable.size(); ++i) {
      if (mask & (1L << i)) {
        m.MakeGlobal(shareable[i].type, shareable[i].users);
        m.SetPeriod(shareable[i].type, shareable[i].period);
      } else {
        m.MakeLocal(shareable[i].type);
      }
    }
  };

  // Fan-out: every mask is evaluated on its own model copy; serial and
  // parallel runs share this path (see period_search.cpp for the
  // determinism argument).
  // Worker runs never trace (see period_search.cpp); the search logs each
  // mask canonically from the reduction loop below.
  CoupledParams worker_params = params;
  if (options.jobs > 1) worker_params.observer = nullptr;
  worker_params.trace = false;
  obs::TraceTrack* track = nullptr;
  if (obs::Tracer* tracer = obs::GlobalTracer())
    track = &tracer->NewTrack("assignment_search");
  obs::ScopedSpan search_span(
      track, "assignment_search",
      obs::TraceArgs()
          .I("shareable", static_cast<long long>(shareable.size()))
          .I("combinations", result.combinations)
          .I("scheduled", mask_count)
          .Json());
  std::vector<std::optional<CoupledResult>> runs(
      static_cast<std::size_t>(mask_count));
  std::vector<int> areas(static_cast<std::size_t>(mask_count), 0);
  std::vector<char> hits(static_cast<std::size_t>(mask_count), 0);
  std::vector<char> store_hits(static_cast<std::size_t>(mask_count), 0);
  std::vector<char> skipped(static_cast<std::size_t>(mask_count), 0);

  const auto evaluate = [&](long mask) -> Status {
    const std::size_t i = static_cast<std::size_t>(mask);
    SystemModel worker = model;
    apply_mask(worker, mask);
    bool hit = false;
    bool store_hit = false;
    auto run_or = ScheduleWithCache(worker, worker_params, options.cache,
                                    &hit, options.store, &store_hit);
    if (!run_or.ok()) return run_or.status();
    runs[i] = std::move(run_or).value();
    areas[i] = runs[i]->allocation.TotalArea(model.library());
    hits[i] = hit ? 1 : 0;
    store_hits[i] = store_hit ? 1 : 0;
    return Status::Ok();
  };

  // Utilization-bound prune (kHarmonic): schedule the probe — the last
  // mask in the capped range, the most-global one without a cap — first,
  // then skip every mask whose certified area floor (period_config.h)
  // already exceeds the probe's achieved area. Exact: a pruned mask's area
  // is strictly greater than the probe's, so it can never win or tie under
  // the popcount tie-break. Bit-identical at any --jobs (the probe runs
  // before the fan-out either way).
  std::vector<long> todo;
  todo.reserve(static_cast<std::size_t>(mask_count));
  if (options.configurator == PeriodConfigurator::kHarmonic &&
      mask_count > 1) {
    const long probe = mask_count - 1;
    if (Status s = evaluate(probe); !s.ok()) return s;
    const int probe_area = areas[static_cast<std::size_t>(probe)];
    for (long mask = 0; mask < probe; ++mask) {
      SystemModel scoped = model;
      apply_mask(scoped, mask);
      if (AreaLowerBound(scoped) > probe_area) {
        skipped[static_cast<std::size_t>(mask)] = 1;
        ++result.pruned;
      } else {
        todo.push_back(mask);
      }
    }
  } else {
    for (long mask = 0; mask < mask_count; ++mask) todo.push_back(mask);
  }

  std::optional<ThreadPool> pool;
  if (options.jobs > 1 && !todo.empty()) pool.emplace(options.jobs);
  Status fan_out = ParallelFor(
      pool ? &*pool : nullptr, todo.size(),
      [&](std::size_t j) -> Status { return evaluate(todo[j]); });
  if (!fan_out.ok()) return fan_out;

  // Reduction in mask order. Ties: prefer MORE sharing (larger mask
  // popcount) — fewer physical units to verify and place even at equal
  // area; among equal popcounts the first mask encountered wins, exactly
  // as in the serial loop. Pruned masks cannot win or tie and are skipped.
  long best_mask_bits = mask_count - 1;
  bool have_best = false;
  for (long mask = 0; mask < mask_count; ++mask) {
    const std::size_t i = static_cast<std::size_t>(mask);
    if (skipped[i]) continue;
    ++result.evaluated;
    if (hits[i]) ++result.cache_hits;
    if (store_hits[i]) ++result.store_hits;
    const bool better =
        !have_best ||
        areas[i] < areas[static_cast<std::size_t>(best_mask_bits)] ||
        (areas[i] == areas[static_cast<std::size_t>(best_mask_bits)] &&
         Popcount(mask) > Popcount(best_mask_bits));
    have_best = true;
    if (better) best_mask_bits = mask;
    if (track != nullptr)
      track->Instant("candidate", obs::TraceArgs()
                                      .I("mask", mask)
                                      .I("area", areas[i])
                                      .I("cache_hit", hits[i] ? 1 : 0)
                                      .I("best", better ? 1 : 0)
                                      .Json());
  }

  if (obs::Enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    const obs::MetricKind kS = obs::MetricKind::kStable;
    reg.GetCounter("assignment_search.combinations", kS)
        .Add(result.combinations);
    reg.GetCounter("assignment_search.evaluated", kS).Add(result.evaluated);
    reg.GetCounter("assignment_search.cache_hits", kS)
        .Add(result.cache_hits);
    reg.GetCounter("assignment_search.pruned", kS).Add(result.pruned);
  }
  result.area = areas[static_cast<std::size_t>(best_mask_bits)];
  result.best = *std::move(runs[static_cast<std::size_t>(best_mask_bits)]);

  // Re-apply and report the winner.
  result.choices.clear();
  apply_mask(model, best_mask_bits);
  for (std::size_t i = 0; i < shareable.size(); ++i) {
    AssignmentChoice choice;
    choice.type = shareable[i].type;
    choice.global = (best_mask_bits & (1L << i)) != 0;
    if (choice.global) choice.period = shareable[i].period;
    result.choices.push_back(choice);
  }
  if (Status s = model.Validate(); !s.ok()) return s;
  return result;
}

double TypeUtilization(const SystemModel& model, ProcessId process,
                       ResourceTypeId type) {
  const ResourceLibrary& lib = model.library();
  long work = 0;
  long steps = 0;
  for (BlockId bid : model.process(process).blocks) {
    const Block& b = model.block(bid);
    steps += b.time_range;
    for (const Operation& op : b.graph.ops())
      if (op.type == type) work += lib.type(type).dii;
  }
  if (steps == 0) return 0.0;
  return static_cast<double>(work) / static_cast<double>(steps);
}

StatusOr<std::vector<AssignmentChoice>> SuggestAssignments(
    SystemModel& model, double utilization_threshold) {
  std::vector<AssignmentChoice> choices;
  for (const ResourceType& t : model.library().types()) {
    std::vector<ProcessId> users;
    double group_utilization = 0;
    for (const Process& p : model.processes()) {
      if (!model.ProcessUsesType(p.id, t.id)) continue;
      users.push_back(p.id);
      group_utilization += TypeUtilization(model, p.id, t.id);
    }
    if (users.size() < 2) continue;
    AssignmentChoice choice;
    choice.type = t.id;
    choice.global = group_utilization <= utilization_threshold;
    if (choice.global) {
      choice.period = CompatiblePeriod(model, users);
      model.MakeGlobal(t.id, users);
      model.SetPeriod(t.id, choice.period);
    } else {
      model.MakeLocal(t.id);
    }
    choices.push_back(choice);
  }
  if (choices.empty())
    return Status{StatusCode::kFailedPrecondition,
                  "no resource type is used by more than one process"};
  if (Status s = model.Validate(); !s.ok()) return s;
  return choices;
}

}  // namespace mshls
