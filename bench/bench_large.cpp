// Experiment A8 — system-scale stress: a 10-process mixed system (EWFs,
// diffeq loops, FIR16s, AR lattices) sharing adder and multiplier pools.
// Reports global vs local area and wall-clock, demonstrating the method
// at a size well beyond the paper's 5-process example, plus the runtime
// validation of the result under an activation storm.
#include <chrono>
#include <cstdio>

#include "common/text_table.h"
#include "modulo/baseline.h"
#include "modulo/coupled_scheduler.h"
#include "report/bench_json.h"
#include "sim/simulator.h"
#include "workloads/benchmarks.h"

using namespace mshls;

int main(int argc, char** argv) {
  const std::string json_file = TakeJsonFlag(argc, argv);
  std::printf("== A8: 10-process mixed system ==\n\n");
  SystemModel model;
  const PaperTypes t = AddPaperTypes(model.library());

  struct Kernel {
    const char* name;
    DataFlowGraph (*build)(const PaperTypes&);
    int deadline;
  };
  const Kernel kernels[] = {
      {"ewf_a", &BuildEwf, 40},      {"ewf_b", &BuildEwf, 30},
      {"ewf_c", &BuildEwf, 20},      {"deq_a", &BuildDiffeq, 20},
      {"deq_b", &BuildDiffeq, 10},   {"deq_c", &BuildDiffeq, 30},
      {"fir_a", &BuildFir16, 10},    {"fir_b", &BuildFir16, 20},
      {"ar_a", &BuildArLattice, 20}, {"ar_b", &BuildArLattice, 30},
  };
  std::vector<ProcessId> procs;
  std::size_t total_ops = 0;
  for (const Kernel& k : kernels) {
    DataFlowGraph g = k.build(t);
    total_ops += g.op_count();
    const ProcessId p = model.AddProcess(k.name, k.deadline);
    model.AddBlock(p, std::string(k.name) + "_main", std::move(g),
                   k.deadline);
    procs.push_back(p);
  }
  // Deadlines are all multiples of 10: common period 10 passes eq. 3.
  model.MakeGlobal(t.add, procs);
  model.MakeGlobal(t.mult, procs);
  model.SetPeriod(t.add, 10);
  model.SetPeriod(t.mult, 10);
  if (Status s = model.Validate(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("%zu processes, %zu operations total\n\n", procs.size(),
              total_ops);

  const auto t0 = std::chrono::steady_clock::now();
  CoupledScheduler scheduler(model, CoupledParams{});
  auto global_or = scheduler.Run();
  const double global_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
  if (!global_or.ok()) {
    std::fprintf(stderr, "%s\n", global_or.status().ToString().c_str());
    return 1;
  }
  const auto t1 = std::chrono::steady_clock::now();
  auto local_or = ScheduleLocalBaseline(model, CoupledParams{});
  const double local_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t1)
                              .count();
  if (!local_or.ok()) {
    std::fprintf(stderr, "%s\n", local_or.status().ToString().c_str());
    return 1;
  }

  TextTable table;
  table.SetHeader({"metric", "global (shared)", "local (traditional)"});
  table.AlignRight(1);
  table.AlignRight(2);
  auto count = [&](const Allocation& a, ResourceTypeId type) {
    return std::to_string(a.TotalInstances(type));
  };
  const Allocation& ga = global_or.value().allocation;
  const Allocation& la = local_or.value().allocation;
  table.AddRow({"adders", count(ga, t.add), count(la, t.add)});
  table.AddRow({"subtracters", count(ga, t.sub), count(la, t.sub)});
  table.AddRow({"multipliers", count(ga, t.mult), count(la, t.mult)});
  table.AddRow({"FU area", std::to_string(ga.TotalArea(model.library())),
                std::to_string(la.TotalArea(model.library()))});
  table.AddRow({"runtime [ms]", FormatDouble(global_ms, 0),
                FormatDouble(local_ms, 0)});
  std::printf("%s", table.Render().c_str());
  std::printf("\narea saving: %.0f%%\n",
              100.0 * (1.0 - static_cast<double>(ga.TotalArea(
                                 model.library())) /
                                 la.TotalArea(model.library())));

  // Validate the shared result under a randomized storm.
  SystemSimulator sim(model, global_or.value().schedule, ga);
  TraceOptions options;
  options.activations_per_process = 8;
  const auto trace = RandomActivationTrace(model, options);
  const SimReport report = sim.Run(trace);
  std::printf("storm of %zu activations: %s\n", trace.size(),
              report.ok ? "conflict-free" : "CONFLICT (bug!)");

  if (!json_file.empty()) {
    BenchJson json("A8", "large");
    json.params().I("processes", static_cast<long long>(procs.size()))
        .I("total_ops", static_cast<long long>(total_ops));
    auto add_row = [&](const char* mode, const Allocation& a, double ms) {
      json.AddRow()
          .S("mode", mode)
          .I("adders", a.TotalInstances(t.add))
          .I("subtracters", a.TotalInstances(t.sub))
          .I("multipliers", a.TotalInstances(t.mult))
          .I("area", a.TotalArea(model.library()))
          .D("wall_ms", ms);
    };
    add_row("global", ga, global_ms);
    add_row("local", la, local_ms);
    if (!json.WriteFile(json_file)) return 1;
  }
  return report.ok ? 0 : 1;
}
