file(REMOVE_RECURSE
  "CMakeFiles/mshls_sim.dir/datapath_simulator.cpp.o"
  "CMakeFiles/mshls_sim.dir/datapath_simulator.cpp.o.d"
  "CMakeFiles/mshls_sim.dir/op_semantics.cpp.o"
  "CMakeFiles/mshls_sim.dir/op_semantics.cpp.o.d"
  "CMakeFiles/mshls_sim.dir/simulator.cpp.o"
  "CMakeFiles/mshls_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/mshls_sim.dir/value_executor.cpp.o"
  "CMakeFiles/mshls_sim.dir/value_executor.cpp.o.d"
  "libmshls_sim.a"
  "libmshls_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mshls_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
