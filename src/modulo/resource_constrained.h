// Resource Constrained Modulo Scheduling with Global Resource Sharing —
// the companion formulation the paper cites as [8] (Jäschke/Laur, ISSS
// 1998) and says its method can also be applied to (§3).
//
// Dual problem of the time-constrained engine: the pool sizes of the
// global types (and per-process local instance counts) are *given*, and
// the scheduler minimizes each block's schedule length while keeping the
// modulo access discipline: a process' occupancy of a global type g at
// residue tau, folded over the period, plus the authorizations already
// committed to the other processes at tau, must never exceed the pool.
//
// Implementation: blocks are scheduled one after another (most demanding
// first) with a least-slack-first list scheduler whose resource check
// works on residues. Each finished block commits its process' folded
// occupancy as that process' authorization table, shrinking the residual
// capacity seen by later processes. The result carries the same
// Allocation structure as the time-constrained path, so binding,
// simulation and RTL generation work unchanged.
#pragma once

#include <vector>

#include "common/status.h"
#include "modulo/allocation.h"

namespace mshls {

struct RcModuloOptions {
  /// Pool size per resource type id for globally assigned types. Types
  /// not covered (or <= 0) default to 1 instance.
  std::vector<int> pool_limits;
  /// Local instance count per type id applied to every process for its
  /// locally assigned types; <= 0 defaults to 1.
  std::vector<int> local_limits;
  /// Hard cap on any block's schedule length (0: sum of all op delays).
  int max_length = 0;
};

struct RcModuloResult {
  SystemSchedule schedule;
  /// Schedule length per block id.
  std::vector<int> lengths;
  Allocation allocation;
};

/// The model must validate; periods come from the model's S2 state.
/// Fails with kInfeasible if some block cannot fit the given pools within
/// max_length (e.g. a pool smaller than one op's concurrent need).
[[nodiscard]] StatusOr<RcModuloResult> ScheduleResourceConstrainedModulo(
    const SystemModel& model, const RcModuloOptions& options);

}  // namespace mshls
