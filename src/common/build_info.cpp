#include "common/build_info.h"

#include <cstdio>

#include "mshls/build_info_gen.h"

namespace mshls {
namespace {

/// Local JSON string escaping: build_info sits below report/ in the
/// dependency order, so it cannot use report/json_export's JsonEscape.
std::string Escape(const char* s) {
  std::string out;
  for (const char* p = s; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info = {
      MSHLS_BUILD_VERSION,   MSHLS_BUILD_GIT_HASH, MSHLS_BUILD_COMPILER,
      MSHLS_BUILD_CXX_FLAGS, MSHLS_BUILD_TYPE,     MSHLS_BUILD_SANITIZER,
      MSHLS_BUILD_TRACE_COMPILED != 0,
  };
  return info;
}

std::string BuildInfoString() {
  const BuildInfo& b = GetBuildInfo();
  std::string out;
  out += "version:    " + std::string(b.version) + "\n";
  out += "git:        " + std::string(b.git_hash) + "\n";
  out += "compiler:   " + std::string(b.compiler) + "\n";
  out += "flags:      " + std::string(b.cxx_flags) + "\n";
  out += "build type: " + std::string(b.build_type) + "\n";
  out += "sanitizer:  " + std::string(b.sanitizer) + "\n";
  out += "obs probes: " + std::string(b.trace_compiled_in ? "compiled in"
                                                          : "compiled out") +
         "\n";
  return out;
}

std::string BuildInfoJson() {
  const BuildInfo& b = GetBuildInfo();
  std::string out = "{";
  out += "\"build_type\":\"" + Escape(b.build_type) + "\",";
  out += "\"compiler\":\"" + Escape(b.compiler) + "\",";
  out += "\"cxx_flags\":\"" + Escape(b.cxx_flags) + "\",";
  out += "\"git_hash\":\"" + Escape(b.git_hash) + "\",";
  out += "\"sanitizer\":\"" + Escape(b.sanitizer) + "\",";
  out += std::string("\"trace_compiled_in\":") +
         (b.trace_compiled_in ? "true" : "false") + ",";
  out += "\"version\":\"" + Escape(b.version) + "\"}";
  return out;
}

}  // namespace mshls
