// Experiment C1 — incremental force engine speedup (DESIGN.md §2 row 26)
// and the observability overhead bound (row 27).
//
// Times the coupled scheduler on the A-series scaling workloads (the
// bench_scaling system generator) in four configurations:
//
//   serial-naive   incremental=false: every iteration re-evaluates every
//                  candidate and rebuilds all profiles from scratch (the
//                  pre-row-26 cost shape, kept as the reference path)
//   incremental    dirty-candidate caching + scoped profile updates, one
//                  thread
//   inc+jobs       the same engine with the candidate sweep fanned out
//                  over worker threads
//   inc+trace      the incremental engine with obs recording enabled and a
//                  live tracer (the decision log); its delta over
//                  `incremental` is the *enabled* instrumentation cost.
//                  The disabled-path cost (probes compiled in, recording
//                  off) is what every other configuration pays; it is
//                  measured honestly across build trees by
//                  scripts/obs_overhead.sh.
//
// All four must produce bit-identical schedules — the bench aborts with
// exit 1 on any divergence, so it doubles as an end-to-end consistency
// check. `--smoke` runs only the smallest workload (used by check.sh under
// sanitizers); `--json <file>` writes the shared mshls-bench-v1 rows for
// scripts/bench_baseline.sh; `--assert-trace-overhead <pct>` exits
// non-zero when the *enabled* tracing overhead on the last row exceeds the
// bound (check.sh smoke).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "modulo/coupled_scheduler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "report/bench_json.h"
#include "workloads/benchmarks.h"

using namespace mshls;

namespace {

/// Same generator as bench_scaling (A2): n processes of `ops` random ops
/// each, global mult + add pools with period 4, deadlines 16.
SystemModel MakeSystem(int n_processes, int ops) {
  SystemModel model;
  const PaperTypes t = AddPaperTypes(model.library());
  Rng rng(42);
  std::vector<ProcessId> procs;
  for (int i = 0; i < n_processes; ++i) {
    RandomDfgOptions options;
    options.ops = ops;
    options.layers = 3;
    options.mult_probability = 0.3;
    DataFlowGraph g = BuildRandomDfg(t, rng, options);
    const ProcessId p = model.AddProcess("p" + std::to_string(i), 16);
    model.AddBlock(p, "b", std::move(g), 16);
    procs.push_back(p);
  }
  model.MakeGlobal(t.mult, procs);
  model.SetPeriod(t.mult, 4);
  model.MakeGlobal(t.add, procs);
  model.SetPeriod(t.add, 4);
  const Status s = model.Validate();
  if (!s.ok()) std::abort();
  return model;
}

struct ModeResult {
  double wall_ms = 0;
  int iterations = 0;
  SystemSchedule schedule;
  CoupledStats stats;
};

ModeResult RunMode(const SystemModel& model, bool incremental, int jobs,
                   int repeats, bool traced = false) {
  ModeResult out;
  for (int r = 0; r < repeats; ++r) {
    CoupledParams params;
    params.incremental = incremental;
    params.jobs = jobs;
    obs::Tracer tracer;
    if (traced) {
      obs::SetEnabled(true);
      obs::InstallGlobalTracer(&tracer);
    }
    CoupledScheduler scheduler(model, params);
    const auto t0 = std::chrono::steady_clock::now();
    auto result = scheduler.Run();
    const auto t1 = std::chrono::steady_clock::now();
    if (traced) {
      obs::UninstallGlobalTracer();
      obs::SetEnabled(false);
    }
    if (!result.ok()) {
      std::fprintf(stderr, "scheduling failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    out.wall_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
    out.iterations = result.value().iterations;
    out.stats = result.value().stats;
    out.schedule = std::move(result.value().schedule);
  }
  out.wall_ms /= repeats;
  return out;
}

bool SameSchedule(const SystemSchedule& a, const SystemSchedule& b) {
  if (a.blocks.size() != b.blocks.size()) return false;
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    if (a.blocks[i].size() != b.blocks[i].size()) return false;
    for (std::size_t o = 0; o < a.blocks[i].size(); ++o) {
      const OpId op{static_cast<int>(o)};
      if (a.blocks[i].start(op) != b.blocks[i].start(op)) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_file = TakeJsonFlag(argc, argv);
  bool smoke = false;
  double assert_overhead_pct = -1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--assert-trace-overhead") == 0 &&
               i + 1 < argc) {
      assert_overhead_pct = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json <file>] "
                   "[--assert-trace-overhead <pct>]\n",
                   argv[0]);
      return 1;
    }
  }

  struct Config { int processes; int ops; int repeats; };
  std::vector<Config> configs;
  if (smoke) {
    configs = {{2, 10, 1}};
  } else {
    configs = {{2, 12, 3}, {4, 16, 3}, {6, 20, 2}, {10, 24, 1}};
  }
  const int jobs =
      std::max(2, static_cast<int>(std::thread::hardware_concurrency()));

  std::printf("C1 incremental force engine — coupled scheduler, %d sweep "
              "job(s) in inc+jobs mode, obs probes %s\n",
              jobs, obs::kCompiledIn ? "compiled in" : "compiled out");
  std::printf("%-14s %6s %12s %12s %12s %12s %9s %9s %8s\n", "workload",
              "iters", "naive ms", "inc ms", "inc+jobs ms", "inc+trace ms",
              "inc x", "jobs x", "trace %");

  BenchJson json("C1", "coupled");
  json.params().I("jobs", jobs).B("smoke", smoke).B(
      "trace_compiled_in", obs::kCompiledIn);

  double last_trace_overhead_pct = 0;
  for (const Config& c : configs) {
    const SystemModel model = MakeSystem(c.processes, c.ops);
    const ModeResult naive = RunMode(model, /*incremental=*/false, 1,
                                     c.repeats);
    const ModeResult inc = RunMode(model, /*incremental=*/true, 1, c.repeats);
    const ModeResult par = RunMode(model, /*incremental=*/true, jobs,
                                   c.repeats);
    const ModeResult traced = RunMode(model, /*incremental=*/true, 1,
                                      c.repeats, /*traced=*/true);
    if (!SameSchedule(naive.schedule, inc.schedule) ||
        !SameSchedule(naive.schedule, par.schedule) ||
        !SameSchedule(naive.schedule, traced.schedule) ||
        naive.iterations != inc.iterations ||
        naive.iterations != par.iterations ||
        naive.iterations != traced.iterations) {
      std::fprintf(stderr,
                   "DIVERGENCE on %dx%d: all engine modes must be "
                   "bit-identical\n", c.processes, c.ops);
      return 1;
    }
    const double trace_overhead_pct =
        (traced.wall_ms / inc.wall_ms - 1.0) * 100.0;
    last_trace_overhead_pct = trace_overhead_pct;
    const std::string name = std::to_string(c.processes) + "p x " +
                             std::to_string(c.ops) + "ops";
    std::printf("%-14s %6d %12.2f %12.2f %12.2f %12.2f %8.2fx %8.2fx %7.1f%%\n",
                name.c_str(), naive.iterations, naive.wall_ms, inc.wall_ms,
                par.wall_ms, traced.wall_ms, naive.wall_ms / inc.wall_ms,
                naive.wall_ms / par.wall_ms, trace_overhead_pct);
    json.AddRow()
        .I("processes", c.processes)
        .I("ops", c.ops)
        .I("repeats", c.repeats)
        .I("iterations", naive.iterations)
        .D("naive_ms", naive.wall_ms)
        .D("incremental_ms", inc.wall_ms)
        .D("incremental_jobs_ms", par.wall_ms)
        .D("incremental_trace_ms", traced.wall_ms)
        .D("speedup_incremental", naive.wall_ms / inc.wall_ms)
        .D("speedup_jobs", naive.wall_ms / par.wall_ms)
        .D("trace_overhead_pct", trace_overhead_pct)
        .I("candidates_evaluated", inc.stats.candidates_evaluated)
        .I("candidates_repriced", inc.stats.candidates_repriced)
        .I("candidates_reused", inc.stats.candidates_reused)
        .I("tier1_invalidations", inc.stats.tier1_invalidations)
        .I("tier2_invalidations", inc.stats.tier2_invalidations);
  }

  if (!json_file.empty() && !json.WriteFile(json_file)) return 1;

  if (assert_overhead_pct >= 0 &&
      last_trace_overhead_pct > assert_overhead_pct) {
    std::fprintf(stderr,
                 "enabled-tracing overhead %.1f%% exceeds the %.1f%% bound\n",
                 last_trace_overhead_pct, assert_overhead_pct);
    return 1;
  }
  return 0;
}
