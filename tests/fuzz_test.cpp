// Tests for the generative differential fuzzer (src/fuzz): generator
// determinism and class coverage, ModelSpec round-tripping, the oracle
// battery on generated cases, the delta-debugging shrinker, the campaign
// driver, and the end-to-end acceptance drill — an injected fault must be
// caught by the certifier and shrunk to a minimal on-disk repro.
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "frontend/emitter.h"
#include "frontend/lowering.h"
#include "fuzz/fuzzer.h"
#include "fuzz/generator.h"
#include "model/model_spec.h"
#include "fuzz/oracles.h"
#include "fuzz/shrinker.h"
#include "workloads/benchmarks.h"

namespace mshls {
namespace {

int TotalOps(const SystemModel& model) {
  int n = 0;
  for (const Block& b : model.blocks())
    n += static_cast<int>(b.graph.op_count());
  return n;
}

TEST(FuzzGenerator, IsDeterministicPerSeed) {
  for (std::uint64_t seed : {1ULL, 42ULL, 0xDEADBEEFULL}) {
    GeneratedCase a = GenerateSystem(seed);
    GeneratedCase b = GenerateSystem(seed);
    EXPECT_EQ(a.cls, b.cls);
    // The emitted DSL text is a full structural fingerprint.
    EXPECT_EQ(EmitSystemText(a.model), EmitSystemText(b.model));
  }
  EXPECT_NE(EmitSystemText(GenerateSystem(1).model),
            EmitSystemText(GenerateSystem(2).model));
}

TEST(FuzzGenerator, CoversAllCaseClassesAndStructures) {
  int clean = 0, infeasible = 0, hostile = 0, with_globals = 0,
      with_phases = 0, multi_process = 0;
  for (int i = 0; i < 300; ++i) {
    const GeneratedCase c = GenerateSystem(FuzzCaseSeed(1, i));
    switch (c.cls) {
      case CaseClass::kClean: ++clean; break;
      case CaseClass::kInfeasible: ++infeasible; break;
      case CaseClass::kGridHostile: ++hostile; break;
    }
    if (!c.model.GlobalTypes().empty()) ++with_globals;
    for (const Block& b : c.model.blocks())
      if (b.phase != 0) {
        ++with_phases;
        break;
      }
    if (c.model.process_count() > 1) ++multi_process;
  }
  EXPECT_GT(clean, 200);
  EXPECT_GT(infeasible, 0);
  EXPECT_GT(hostile, 0);
  EXPECT_GT(with_globals, 100);
  EXPECT_GT(with_phases, 10);
  EXPECT_GT(multi_process, 150);
}

TEST(ModelSpec, RoundTripsGeneratedModels) {
  int round_tripped = 0;
  for (int i = 0; i < 20; ++i) {
    const GeneratedCase c = GenerateSystem(FuzzCaseSeed(3, i));
    if (c.cls != CaseClass::kClean) continue;
    StatusOr<SystemModel> rebuilt = BuildModel(ExtractSpec(c.model));
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
    SystemModel original = c.model;
    ASSERT_TRUE(original.Validate().ok());
    EXPECT_EQ(EmitSystemText(original), EmitSystemText(rebuilt.value()))
        << "case " << i;
    ++round_tripped;
  }
  EXPECT_GT(round_tripped, 10);
}

TEST(ModelSpec, RejectsDanglingIndices) {
  ModelSpec spec;
  spec.types.push_back(SpecType{"add", 1, 1, 1});
  SpecProcess p;
  p.name = "p";
  SpecBlock b;
  b.name = "b";
  b.time_range = 4;
  b.ops.push_back(SpecOp{0, "x"});
  b.ops.push_back(SpecOp{7, "bad type"});
  p.blocks.push_back(b);
  spec.processes.push_back(p);
  EXPECT_EQ(BuildModel(spec).status().code(), StatusCode::kInvalidArgument);

  spec.processes[0].blocks[0].ops[1].type = 0;
  spec.processes[0].blocks[0].edges.push_back(SpecEdge{0, 9});
  EXPECT_EQ(BuildModel(spec).status().code(), StatusCode::kInvalidArgument);
}

TEST(FuzzOracles, CleanCasesPassTheFullBattery) {
  int checked = 0;
  for (int i = 0; i < 25; ++i) {
    const std::uint64_t seed = FuzzCaseSeed(2, i);
    const GeneratedCase c = GenerateSystem(seed);
    const CaseOutcome out = RunCaseOracles(c.model, seed, c.cls);
    EXPECT_TRUE(out.ok()) << out.LogLine(i);
    if (c.cls == CaseClass::kClean && out.feasible) ++checked;
  }
  EXPECT_GT(checked, 15);
}

TEST(FuzzOracles, InfeasibleCasesAreRejectedTyped) {
  int found = 0;
  for (int i = 0; i < 400 && found < 3; ++i) {
    const std::uint64_t seed = FuzzCaseSeed(4, i);
    const GeneratedCase c = GenerateSystem(seed);
    if (c.cls != CaseClass::kInfeasible) continue;
    ++found;
    const CaseOutcome out = RunCaseOracles(c.model, seed, c.cls);
    EXPECT_TRUE(out.ok()) << out.LogLine(i);
    EXPECT_FALSE(out.valid);
    EXPECT_EQ(out.reject_code, StatusCode::kInfeasible);
  }
  EXPECT_EQ(found, 3);
}

TEST(FuzzOracles, GridHostileCasesAreFlaggedByTheCertifier) {
  int found = 0;
  for (int i = 0; i < 600 && found < 3; ++i) {
    const std::uint64_t seed = FuzzCaseSeed(5, i);
    const GeneratedCase c = GenerateSystem(seed);
    if (c.cls != CaseClass::kGridHostile) continue;
    ++found;
    // ok() here means the negative oracle held: the misdeclared period was
    // either rejected up front or certified dirty with kGridMisalignment.
    const CaseOutcome out = RunCaseOracles(c.model, seed, c.cls);
    EXPECT_TRUE(out.ok()) << out.LogLine(i);
  }
  EXPECT_EQ(found, 3);
}

TEST(Shrinker, MinimizesToThePredicateBoundary) {
  // One process, one block, a 6-op chain; predicate: at least 3 ops. Block
  // and process are the only containers, so the fixpoint is exactly 3 ops.
  SystemModel model;
  const PaperTypes t = AddPaperTypes(model.library());
  DataFlowGraph g;
  OpId prev = g.AddOp(t.add, "a0");
  for (int i = 1; i < 6; ++i) {
    const OpId cur = g.AddOp(t.add, "a" + std::to_string(i));
    g.AddEdge(prev, cur);
    prev = cur;
  }
  ASSERT_TRUE(g.Validate().ok());
  const ProcessId p = model.AddProcess("p");
  model.AddBlock(p, "b", std::move(g), 8);
  ASSERT_TRUE(model.Validate().ok());

  const SpecPredicate keep = [](const ModelSpec& s) {
    return s.TotalOps() >= 3;
  };
  const ShrinkResult shrunk = ShrinkSpec(ExtractSpec(model), keep);
  EXPECT_EQ(shrunk.spec.TotalOps(), 3);
  // `removed` counts every accepted removal action — the 3 ops plus any
  // chain edges stripped as separate steps before their endpoints went.
  EXPECT_GE(shrunk.removed, 3);
  EXPECT_TRUE(keep(shrunk.spec));
  EXPECT_TRUE(BuildModel(shrunk.spec).ok());
}

TEST(Shrinker, RespectsTheAttemptBudget) {
  const GeneratedCase c = GenerateSystem(FuzzCaseSeed(6, 0));
  ShrinkOptions options;
  options.max_attempts = 5;
  const ShrinkResult shrunk =
      ShrinkSpec(ExtractSpec(c.model),
                 [](const ModelSpec&) { return true; }, options);
  EXPECT_LE(shrunk.attempts, 5);
}

TEST(FuzzDriver, ParsesTheFuzzSpec) {
  int cases = 0;
  std::uint64_t seed = 0;
  ASSERT_TRUE(ParseFuzzSpec("500", &cases, &seed).ok());
  EXPECT_EQ(cases, 500);
  EXPECT_EQ(seed, 1u);
  ASSERT_TRUE(ParseFuzzSpec("10:7", &cases, &seed).ok());
  EXPECT_EQ(cases, 10);
  EXPECT_EQ(seed, 7u);
  EXPECT_EQ(ParseFuzzSpec("", &cases, &seed).code(), StatusCode::kParseError);
  EXPECT_EQ(ParseFuzzSpec("x", &cases, &seed).code(), StatusCode::kParseError);
  EXPECT_EQ(ParseFuzzSpec("0", &cases, &seed).code(), StatusCode::kParseError);
  EXPECT_EQ(ParseFuzzSpec("5:", &cases, &seed).code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseFuzzSpec("5:abc", &cases, &seed).code(),
            StatusCode::kParseError);
}

TEST(FuzzDriver, CaseSeedsAreDistinctAcrossIndicesAndRuns) {
  std::set<std::uint64_t> seeds;
  for (int i = 0; i < 100; ++i) {
    seeds.insert(FuzzCaseSeed(1, i));
    seeds.insert(FuzzCaseSeed(2, i));
  }
  EXPECT_EQ(seeds.size(), 200u);
}

TEST(FuzzDriver, SmallCampaignReportsCleanly) {
  FuzzOptions options;
  options.cases = 30;
  options.seed = 1;
  options.repro_dir.clear();  // nothing should need persisting
  auto report = RunFuzz(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().ok()) << report.value().Summary();
  EXPECT_EQ(report.value().cases, 30);
  EXPECT_EQ(report.value().clean + report.value().infeasible +
                report.value().grid_hostile,
            30);
  EXPECT_EQ(static_cast<int>(report.value().log.size()), 30);
  EXPECT_GT(report.value().replay_checked, 0);
}

// The acceptance drill: a deliberately "reintroduced scheduler bug"
// (post-schedule artifact corruption) must be caught by the certifier on
// generated inputs and minimized to a tiny replayable repro on disk.
TEST(FuzzDriver, InjectedFaultCaughtAndShrunk) {
  FuzzOptions options;
  options.cases = 12;
  options.seed = 1;
  options.inject = FaultPlan{FaultKind::kShiftOp, 3};
  options.repro_dir =
      (std::filesystem::path(::testing::TempDir()) / "mshls_fuzz_inject")
          .string();
  options.max_repros = 2;
  std::filesystem::remove_all(options.repro_dir);
  auto report_or = RunFuzz(options);
  ASSERT_TRUE(report_or.ok()) << report_or.status().ToString();
  const FuzzReport& report = report_or.value();
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.inject_caught, 0);
  EXPECT_EQ(report.inject_caught, report.inject_applicable);
  ASSERT_FALSE(report.repro_paths.empty());
  for (const std::string& path : report.repro_paths) {
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    auto model = CompileSystem(buf.str());
    ASSERT_TRUE(model.ok()) << path << ": " << model.status().ToString();
    EXPECT_LE(TotalOps(model.value()), 6) << path << " is not minimal";
  }
}

TEST(FuzzDriver, DifferentialModeWritesReproForARealFailure) {
  // Starve the exact oracle's eligibility to fake nothing; instead force a
  // failure deterministically by injecting nothing and flipping the class
  // label: a clean feasible model declared kInfeasible must fail the
  // pipeline oracle and be persisted (shrinking falls back to the original
  // when the family cannot be reproduced on rebuilt models).
  GeneratedCase c;
  int index = -1;
  for (int i = 0; i < 50; ++i) {
    c = GenerateSystem(FuzzCaseSeed(1, i));
    if (c.cls == CaseClass::kClean) {
      index = i;
      break;
    }
  }
  ASSERT_GE(index, 0);
  const std::uint64_t seed = FuzzCaseSeed(1, index);
  const CaseOutcome out =
      RunCaseOracles(c.model, seed, CaseClass::kInfeasible);
  EXPECT_FALSE(out.ok());
  ASSERT_FALSE(out.failures.empty());
  EXPECT_EQ(out.failures.front().kind, OracleKind::kPipeline);
}

}  // namespace
}  // namespace mshls
