# Empty dependencies file for mshls_model.
# This may be replaced when dependencies are built.
