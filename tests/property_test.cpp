// Property-based sweeps: randomized systems run through the full
// scheduling stack, checking the invariants that must hold for *every*
// input, not just the curated benchmarks.
#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "fds/fds_scheduler.h"
#include "modulo/baseline.h"
#include "modulo/coupled_scheduler.h"
#include "sim/simulator.h"
#include "workloads/benchmarks.h"

namespace mshls {
namespace {

// ---- single-block scheduler properties over random graphs ----

class RandomBlockProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  SystemModel model_;
  PaperTypes types_ = AddPaperTypes(model_.library());

  const Block& MakeRandomBlock(Rng& rng) {
    RandomDfgOptions options;
    options.ops = rng.NextInt(5, 30);
    options.layers = rng.NextInt(2, 6);
    options.edge_probability = 0.2 + rng.NextDouble() * 0.5;
    options.mult_probability = 0.1 + rng.NextDouble() * 0.5;
    DataFlowGraph g = BuildRandomDfg(types_, rng, options);
    const DelayFn delay = [&](OpId op) {
      return model_.library().type(g.op(op).type).delay;
    };
    const int cp = g.CriticalPathLength(delay);
    const int range = cp + rng.NextInt(0, cp);
    const ProcessId p = model_.AddProcess(
        "p" + std::to_string(model_.process_count()));
    const BlockId b = model_.AddBlock(p, "b", std::move(g), range);
    EXPECT_TRUE(model_.Validate().ok());
    return model_.block(b);
  }
};

TEST_P(RandomBlockProperty, IfdsSchedulesAreValidAndUsageIsTight) {
  Rng rng(GetParam());
  for (int round = 0; round < 4; ++round) {
    const Block& b = MakeRandomBlock(rng);
    auto res = ScheduleBlockIfds(b, model_.library(), {});
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_TRUE(
        ValidateBlockSchedule(b, model_.DelayOf(b.id), res.value().schedule)
            .ok());
    // Usage is exactly the occupancy maximum (not an over-approximation),
    // and meets the trivial lower bound ceil(ops * dii / range).
    for (const ResourceType& t : model_.library().types()) {
      const auto prof = OccupancyProfile(b, model_.library(),
                                         res.value().schedule, t.id);
      int peak = 0;
      std::int64_t work = 0;
      for (int v : prof) {
        peak = std::max(peak, v);
        work += v;
      }
      EXPECT_EQ(res.value().usage[t.id.index()], peak);
      EXPECT_GE(peak, CeilDiv(work, b.time_range));
    }
  }
}

TEST_P(RandomBlockProperty, ClassicFdsAgreesOnValidity) {
  Rng rng(GetParam() * 77 + 1);
  const Block& b = MakeRandomBlock(rng);
  auto res = ScheduleBlockFds(b, model_.library(), {});
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(
      ValidateBlockSchedule(b, model_.DelayOf(b.id), res.value().schedule)
          .ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBlockProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---- whole-system properties over random multi-process systems ----

class RandomSystemProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  /// Builds 2-4 processes of random graphs with deadlines that share a
  /// common divisor, marks 1-2 types global over random groups with an
  /// eq.-3-compatible period.
  SystemModel BuildRandomSystem(Rng& rng) {
    SystemModel model;
    const PaperTypes t = AddPaperTypes(model.library());
    const int nproc = rng.NextInt(2, 4);
    const int unit = rng.NextInt(2, 4);  // common divisor of deadlines
    std::vector<ProcessId> procs;
    for (int i = 0; i < nproc; ++i) {
      RandomDfgOptions options;
      options.ops = rng.NextInt(4, 16);
      options.layers = rng.NextInt(2, 4);
      options.mult_probability = 0.3;
      DataFlowGraph g = BuildRandomDfg(t, rng, options);
      const DelayFn delay = [&](OpId op) {
        return model.library().type(g.op(op).type).delay;
      };
      const int cp = g.CriticalPathLength(delay);
      // Round the range up to a multiple of `unit`, plus random slack.
      const int range = static_cast<int>(
          CeilDiv(cp + rng.NextInt(0, cp), unit) * unit);
      const ProcessId p = model.AddProcess("p" + std::to_string(i), range);
      model.AddBlock(p, "b" + std::to_string(i), std::move(g), range);
      procs.push_back(p);
    }
    // Global multiplier over a random subgroup of size >= 2 when possible.
    std::vector<ProcessId> group;
    for (ProcessId p : procs)
      if (rng.NextBool(0.8)) group.push_back(p);
    if (group.size() < 2) group = procs;
    model.MakeGlobal(t.mult, group);
    model.SetPeriod(t.mult, unit);
    if (rng.NextBool(0.5)) {
      model.MakeGlobal(t.add, procs);
      model.SetPeriod(t.add, unit);
    }
    EXPECT_TRUE(model.Validate().ok());
    return model;
  }
};

TEST_P(RandomSystemProperty, CoupledRunSatisfiesAllInvariants) {
  Rng rng(GetParam());
  SystemModel model = BuildRandomSystem(rng);
  CoupledScheduler scheduler(model, CoupledParams{});
  auto result = scheduler.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const CoupledResult& run = result.value();

  EXPECT_TRUE(ValidateSystemSchedule(model, run.schedule).ok());
  EXPECT_TRUE(CheckAllocationCovers(model, run.schedule, run.allocation).ok());

  // Pool invariants: instances equal the profile max; each user's
  // authorization is the folded occupancy max of its blocks.
  for (const GlobalTypeAllocation& ga : run.allocation.global) {
    int peak = 0;
    for (int v : ga.profile) peak = std::max(peak, v);
    EXPECT_EQ(ga.instances, peak);
  }
}

TEST_P(RandomSystemProperty, RandomTracesNeverConflict) {
  Rng rng(GetParam() * 31 + 7);
  SystemModel model = BuildRandomSystem(rng);
  CoupledScheduler scheduler(model, CoupledParams{});
  auto result = scheduler.Run();
  ASSERT_TRUE(result.ok());
  SystemSimulator sim(model, result.value().schedule,
                      result.value().allocation);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    TraceOptions options;
    options.seed = seed * 1000 + GetParam();
    options.activations_per_process = 5;
    const auto trace = RandomActivationTrace(model, options);
    const SimReport report = sim.Run(trace);
    EXPECT_TRUE(report.ok)
        << "trace seed " << options.seed << ": "
        << (report.violations.empty() ? "" : report.violations[0].detail);
  }
}

TEST_P(RandomSystemProperty, GlobalSharingNeverIncreasesPoolBeyondLocalSum) {
  // The pooled instance count of a global type can never exceed what the
  // pure local assignment would build in total for the group (each process
  // would get its own peak).
  Rng rng(GetParam() * 13 + 3);
  SystemModel model = BuildRandomSystem(rng);
  CoupledScheduler scheduler(model, CoupledParams{});
  auto result = scheduler.Run();
  ASSERT_TRUE(result.ok());
  auto baseline = ScheduleLocalBaseline(model, CoupledParams{});
  ASSERT_TRUE(baseline.ok());
  for (const GlobalTypeAllocation& ga : result.value().allocation.global) {
    int local_sum = 0;
    for (ProcessId p : ga.users)
      local_sum += baseline.value().allocation.local[p.index()]
                                                    [ga.type.index()];
    // Pool <= sum of local peaks + slack of 1 for heuristic noise (the
    // pool bound per residue is the sum of per-process peaks).
    EXPECT_LE(ga.instances, local_sum + 1);
  }
}

TEST_P(RandomSystemProperty, SchedulesAreGridMoveInvariant) {
  // The core soundness argument of the paper (eq. 2): delaying any single
  // activation by one grid step changes nothing. Verify via the simulator
  // by shifting activations by random multiples of the grid.
  Rng rng(GetParam() * 101 + 9);
  SystemModel model = BuildRandomSystem(rng);
  CoupledScheduler scheduler(model, CoupledParams{});
  auto result = scheduler.Run();
  ASSERT_TRUE(result.ok());
  SystemSimulator sim(model, result.value().schedule,
                      result.value().allocation);
  // Base trace: everything starts at 0.
  std::vector<Activation> trace;
  for (const Block& b : model.blocks()) trace.push_back({b.id, 0});
  ASSERT_TRUE(sim.Run(trace).ok);
  for (int round = 0; round < 16; ++round) {
    std::vector<Activation> shifted = trace;
    for (Activation& a : shifted) {
      const std::int64_t grid =
          model.GridSpacing(model.block(a.block).process);
      a.start += grid * rng.NextInt(0, 6);
    }
    const SimReport report = sim.Run(shifted);
    EXPECT_TRUE(report.ok)
        << (report.violations.empty() ? "" : report.violations[0].detail);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSystemProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace mshls
