// Experiment F3 — fuzz campaign throughput and oracle cost breakdown.
//
// Runs a fixed campaign (400 cases, seed 1) several times with different
// oracle subsets enabled and reports cases/sec per configuration, so the
// relative cost of each oracle family (certify, exact bound, metamorphic,
// cache replay) can be eyeballed in a log. The last row is the full
// battery — the configuration `mshlsc --fuzz` and scripts/check.sh run.
#include <chrono>
#include <cstdio>

#include "common/text_table.h"
#include "fuzz/fuzzer.h"
#include "report/bench_json.h"

using namespace mshls;

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct Config {
  const char* name;
  bool certify, exact, metamorphic, replay;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_file = TakeJsonFlag(argc, argv);
  constexpr int kCases = 400;
  BenchJson json("F3", "fuzz");
  json.params().I("cases", kCases).I("seed", 1);
  const Config configs[] = {
      {"generate+schedule", false, false, false, false},
      {"+certify", true, false, false, false},
      {"+exact-bound", true, true, false, false},
      {"+metamorphic", true, true, true, false},
      {"+cache-replay (full)", true, true, true, true},
  };

  TextTable table;
  table.SetHeader({"oracles", "cases", "failures", "ms", "cases/sec"});
  for (const Config& cfg : configs) {
    FuzzOptions options;
    options.cases = kCases;
    options.seed = 1;
    options.jobs = 1;
    options.repro_dir.clear();
    options.oracles.run_certify = cfg.certify;
    options.oracles.run_exact = cfg.exact;
    options.oracles.run_metamorphic = cfg.metamorphic;
    options.oracles.run_replay = cfg.replay;

    const auto t0 = std::chrono::steady_clock::now();
    auto report = RunFuzz(options);
    const double ms = MsSince(t0);
    if (!report.ok()) {
      std::fprintf(stderr, "campaign failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    table.AddRow({cfg.name, std::to_string(kCases),
                  std::to_string(report.value().failures),
                  std::to_string(static_cast<long>(ms)),
                  std::to_string(static_cast<long>(kCases * 1000.0 / ms))});
    json.AddRow()
        .S("oracles", cfg.name)
        .I("jobs", 1)
        .I("failures", report.value().failures)
        .D("wall_ms", ms)
        .D("cases_per_sec", kCases * 1000.0 / ms);
  }
  std::printf("%s", table.Render().c_str());

  // Parallel fan-out: the same full battery at --jobs 8.
  FuzzOptions options;
  options.cases = kCases;
  options.seed = 1;
  options.jobs = 8;
  options.repro_dir.clear();
  const auto t0 = std::chrono::steady_clock::now();
  auto report = RunFuzz(options);
  const double ms = MsSince(t0);
  if (!report.ok() || !report.value().ok()) {
    std::fprintf(stderr, "parallel campaign failed\n");
    return 1;
  }
  std::printf("full battery at jobs=8: %ld ms (%ld cases/sec)\n",
              static_cast<long>(ms),
              static_cast<long>(kCases * 1000.0 / ms));
  json.AddRow()
      .S("oracles", "+cache-replay (full)")
      .I("jobs", 8)
      .I("failures", report.value().failures)
      .D("wall_ms", ms)
      .D("cases_per_sec", kCases * 1000.0 / ms);
  if (!json_file.empty() && !json.WriteFile(json_file)) return 1;
  return 0;
}
