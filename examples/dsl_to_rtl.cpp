// Behavioral-text-to-Verilog flow: compiles a system written in the input
// language (from a file argument or a built-in demo), runs automatic period
// selection (step S2), the coupled modulo scheduler (S3), binding, and
// emits the Verilog netlist with the shared pools and their residue-counter
// access control.
//
//   $ ./examples/dsl_to_rtl                 # built-in demo, RTL to stdout
//   $ ./examples/dsl_to_rtl design.hls out.v
#include <cstdio>
#include <fstream>
#include <sstream>

#include "bind/binding.h"
#include "frontend/lowering.h"
#include "modulo/coupled_scheduler.h"
#include "modulo/period_search.h"
#include "report/experiment_report.h"
#include "rtl/verilog_gen.h"

using namespace mshls;

namespace {

constexpr const char* kDemo = R"(
# Two DSP kernels sharing one multiplier pool.
resource add  delay 1 area 1;
resource mult delay 2 dii 1 area 4;

process biquad deadline 8 {
  block step time 8 {
    m1 = x * b0;
    m2 = z1 * b1;
    m3 = z2 * b2;
    s1 = m1 + m2;
    y  = s1 + m3;
  }
}
process mixer deadline 8 {
  block step time 8 {
    m1 = l * gl;
    m2 = r * gr;
    y  = m1 + m2;
  }
}
share mult among biquad, mixer;
share add  among biquad, mixer;
)";

}  // namespace

int main(int argc, char** argv) {
  std::string source = kDemo;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
  }

  auto model_or = CompileSystem(source);
  if (!model_or.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 model_or.status().ToString().c_str());
    return 1;
  }
  SystemModel model = std::move(model_or).value();

  // S2: pick the best periods automatically.
  auto search = SearchPeriods(model, CoupledParams{});
  if (!search.ok()) {
    std::fprintf(stderr, "period search failed: %s\n",
                 search.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "period search: %ld combinations, %ld filtered by "
               "eq. 3, %ld scheduled; best area %d\n",
               search.value().combinations, search.value().filtered_out,
               search.value().evaluated, search.value().area);
  const CoupledResult& result = search.value().best;
  std::fprintf(stderr, "allocation: %s\n",
               SummarizeAllocation(model, result.allocation).c_str());

  auto binding = BindSystem(model, result.schedule, result.allocation);
  if (!binding.ok()) {
    std::fprintf(stderr, "binding failed: %s\n",
                 binding.status().ToString().c_str());
    return 1;
  }
  auto design = GenerateRtl(model, result.schedule, result.allocation,
                            binding.value());
  if (!design.ok()) {
    std::fprintf(stderr, "rtl generation failed: %s\n",
                 design.status().ToString().c_str());
    return 1;
  }

  if (argc > 2) {
    std::ofstream out(argv[2]);
    out << design.value().source;
    std::fprintf(stderr, "wrote %s (%zu modules)\n", argv[2],
                 design.value().module_names.size());
  } else {
    std::printf("%s", design.value().source.c_str());
  }
  return 0;
}
