#include "dfg/dot_export.h"

#include <cassert>

namespace mshls {

std::string ToDot(const DataFlowGraph& graph, std::string_view name,
                  const DotOptions& options) {
  assert(graph.validated());
  std::string out = "digraph \"";
  out += name;
  out += "\" {\n  rankdir=TB;\n  node [fontsize=10];\n";
  for (const Operation& op : graph.ops()) {
    std::string label =
        op.name.empty() ? "op" + std::to_string(op.id.value()) : op.name;
    if (options.type_label) {
      label += "\\n";
      label += options.type_label(op.type);
    }
    if (options.start_step) {
      const int s = options.start_step(op.id);
      if (s >= 0) label += " @" + std::to_string(s);
    }
    out += "  n" + std::to_string(op.id.value()) + " [label=\"" + label +
           "\"];\n";
  }
  for (const Edge& e : graph.edges()) {
    out += "  n" + std::to_string(e.from.value()) + " -> n" +
           std::to_string(e.to.value()) + ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace mshls
