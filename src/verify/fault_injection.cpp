#include "verify/fault_injection.h"

#include <charconv>
#include <utility>

#include "common/rng.h"

namespace mshls {
namespace {

/// Uniform pick among eligible sites; deterministic per (plan.seed, n).
std::size_t Pick(Rng& rng, std::size_t n) {
  return static_cast<std::size_t>(rng.NextBounded(n));
}

bool ScheduleUsable(const SystemModel& model, const SystemSchedule& schedule,
                    BlockId bid) {
  return bid.index() < schedule.blocks.size() &&
         schedule.of(bid).size() == model.block(bid).graph.op_count();
}

StatusOr<InjectedFault> ShiftOp(Rng& rng, const SystemModel& model,
                                SystemSchedule& schedule) {
  std::vector<std::pair<BlockId, OpId>> sites;
  for (const Block& b : model.blocks()) {
    if (!ScheduleUsable(model, schedule, b.id)) continue;
    for (const Operation& op : b.graph.ops())
      if (schedule.of(b.id).start(op.id) >= 0) sites.emplace_back(b.id, op.id);
  }
  if (sites.empty())
    return Status{StatusCode::kFailedPrecondition,
                  "no scheduled op to shift"};
  const auto [bid, op] = sites[Pick(rng, sites.size())];
  const Block& b = model.block(bid);
  const int delay = model.library().type(b.graph.op(op).type).delay;
  // One past the last legal start: start + delay = time_range + 1.
  const int start = b.time_range - delay + 1;
  schedule.of(bid).set_start(op, start);
  return InjectedFault{
      FaultKind::kShiftOp,
      "shifted op " + std::to_string(op.value()) + " of block '" + b.name +
          "' to step " + std::to_string(start) + " (past time range " +
          std::to_string(b.time_range) + ")",
      ViolationKind::kRangeViolation};
}

StatusOr<InjectedFault> DropEdge(Rng& rng, const SystemModel& model,
                                 SystemSchedule& schedule) {
  struct Site {
    BlockId block;
    OpId from, to;
  };
  std::vector<Site> sites;
  for (const Block& b : model.blocks()) {
    if (!ScheduleUsable(model, schedule, b.id)) continue;
    const BlockSchedule& s = schedule.of(b.id);
    for (const Edge& e : b.graph.edges())
      if (s.start(e.from) >= 0 && s.start(e.to) >= 0)
        sites.push_back(Site{b.id, e.from, e.to});
  }
  if (sites.empty())
    return Status{StatusCode::kFailedPrecondition,
                  "no scheduled dependence edge to break"};
  const Site site = sites[Pick(rng, sites.size())];
  const Block& b = model.block(site.block);
  const BlockSchedule& s = schedule.of(site.block);
  const int delay = model.library().type(b.graph.op(site.from).type).delay;
  // One step before the producer's result: always violates the edge (the
  // clean consumer start is >= producer + delay > this), never negative
  // because delay >= 1.
  const int start = s.start(site.from) + delay - 1;
  schedule.of(site.block).set_start(site.to, start);
  return InjectedFault{
      FaultKind::kDropEdge,
      "rescheduled consumer op " + std::to_string(site.to.value()) +
          " of block '" + b.name + "' to step " + std::to_string(start) +
          ", before the result of op " + std::to_string(site.from.value()),
      ViolationKind::kDependenceViolation};
}

StatusOr<InjectedFault> SwapBinding(Rng& rng, const SystemModel& model,
                                    const SystemSchedule& schedule,
                                    SystemBinding* binding) {
  if (binding == nullptr)
    return Status{StatusCode::kInvalidArgument,
                  "swap-binding needs a binding artifact"};
  // Preferred site: two same-type ops of one block issued at the same step
  // on different instances — rebinding one onto the other collides at every
  // claimed step, and (same process, same residues) keeps ownership and
  // entitlement intact, so exactly the double-booking invariant breaks.
  struct Pair {
    BlockId block;
    OpId victim;
    InstanceId target;
  };
  std::vector<Pair> pairs;
  for (const Block& b : model.blocks()) {
    if (!ScheduleUsable(model, schedule, b.id)) continue;
    if (b.id.index() >= binding->op_instance.size()) continue;
    const std::vector<InstanceId>& per_op =
        binding->op_instance[b.id.index()];
    if (per_op.size() != b.graph.op_count()) continue;
    const BlockSchedule& s = schedule.of(b.id);
    for (const Operation& a : b.graph.ops()) {
      for (const Operation& c : b.graph.ops()) {
        if (a.id == c.id || a.type != c.type) continue;
        if (s.start(a.id) < 0 || s.start(a.id) != s.start(c.id)) continue;
        if (per_op[a.id.index()] == per_op[c.id.index()]) continue;
        pairs.push_back(Pair{b.id, c.id, per_op[a.id.index()]});
      }
    }
  }
  if (!pairs.empty()) {
    const Pair p = pairs[Pick(rng, pairs.size())];
    binding->op_instance[p.block.index()][p.victim.index()] = p.target;
    return InjectedFault{
        FaultKind::kSwapBinding,
        "rebound op " + std::to_string(p.victim.value()) + " of block '" +
            model.block(p.block).name + "' onto busy instance '" +
            binding->info(p.target).name + "'",
        ViolationKind::kBindingDoubleBooking};
  }
  // Fallback: bind an op to an instance of a foreign type.
  struct Mis {
    BlockId block;
    OpId op;
    InstanceId target;
  };
  std::vector<Mis> mis;
  for (const Block& b : model.blocks()) {
    if (b.id.index() >= binding->op_instance.size()) continue;
    if (binding->op_instance[b.id.index()].size() != b.graph.op_count())
      continue;
    for (const Operation& op : b.graph.ops())
      for (const InstanceInfo& info : binding->instances)
        if (info.type != op.type) mis.push_back(Mis{b.id, op.id, info.id});
  }
  if (!mis.empty()) {
    const Mis m = mis[Pick(rng, mis.size())];
    binding->op_instance[m.block.index()][m.op.index()] = m.target;
    return InjectedFault{
        FaultKind::kSwapBinding,
        "rebound op " + std::to_string(m.op.value()) + " of block '" +
            model.block(m.block).name + "' onto foreign-type instance '" +
            binding->info(m.target).name + "'",
        ViolationKind::kBindingTypeMismatch};
  }
  // Last resort (single type, single instance): unbind an op.
  for (const Block& b : model.blocks()) {
    if (b.id.index() >= binding->op_instance.size()) continue;
    std::vector<InstanceId>& per_op = binding->op_instance[b.id.index()];
    if (per_op.empty()) continue;
    const std::size_t slot = Pick(rng, per_op.size());
    per_op[slot] = InstanceId::invalid();
    return InjectedFault{FaultKind::kSwapBinding,
                         "unbound op " + std::to_string(slot) +
                             " of block '" + b.name + "'",
                         ViolationKind::kBindingIncomplete};
  }
  return Status{StatusCode::kFailedPrecondition, "no binding site to corrupt"};
}

StatusOr<InjectedFault> PerturbPeriod(Rng& rng, const SystemModel& model,
                                      Allocation& allocation) {
  std::vector<std::size_t> sites;
  for (std::size_t i = 0; i < allocation.global.size(); ++i)
    if (allocation.global[i].type.valid()) sites.push_back(i);
  if (sites.empty())
    return Status{StatusCode::kFailedPrecondition,
                  "no global pool whose period could drift"};
  GlobalTypeAllocation& ga = allocation.global[sites[Pick(rng, sites.size())]];
  const int old_period = ga.period;
  ga.period = old_period == 1 ? 2 : old_period - 1;
  return InjectedFault{
      FaultKind::kPerturbPeriod,
      "changed the period of pool '" +
          model.library().type(ga.type).name + "' from " +
          std::to_string(old_period) + " to " + std::to_string(ga.period),
      ViolationKind::kPeriodMismatch};
}

StatusOr<InjectedFault> OversubscribeResidue(Rng& rng,
                                             const SystemModel& model,
                                             Allocation& allocation) {
  std::vector<std::size_t> sites;
  for (std::size_t i = 0; i < allocation.global.size(); ++i)
    if (allocation.global[i].instances >= 1) sites.push_back(i);
  if (sites.empty())
    return Status{StatusCode::kFailedPrecondition,
                  "no populated global pool to shrink"};
  GlobalTypeAllocation& ga = allocation.global[sites[Pick(rng, sites.size())]];
  // N_g = max_tau sum_u A_u(tau) in a clean artifact, so the peak residue
  // is now oversubscribed by exactly one instance.
  --ga.instances;
  return InjectedFault{
      FaultKind::kOversubscribeResidue,
      "shrank pool '" + model.library().type(ga.type).name + "' to " +
          std::to_string(ga.instances) +
          " instance(s), below its authorization peak",
      ViolationKind::kResidueOverSubscription};
}

StatusOr<InjectedFault> CorruptLocalCount(Rng& rng, const SystemModel& model,
                                          Allocation& allocation) {
  std::vector<std::pair<std::size_t, std::size_t>> sites;
  for (std::size_t p = 0; p < allocation.local.size(); ++p)
    for (std::size_t t = 0; t < allocation.local[p].size(); ++t)
      if (allocation.local[p][t] >= 1) sites.emplace_back(p, t);
  if (sites.empty())
    return Status{StatusCode::kFailedPrecondition,
                  "no local allocation to shrink"};
  const auto [p, t] = sites[Pick(rng, sites.size())];
  // Local counts are peak occupancies in a clean artifact; one less no
  // longer covers the peak cycle.
  --allocation.local[p][t];
  return InjectedFault{
      FaultKind::kCorruptLocalCount,
      "shrank local '" +
          model.library().type(ResourceTypeId{static_cast<int>(t)}).name +
          "' count of process '" +
          model.process(ProcessId{static_cast<int>(p)}).name + "' to " +
          std::to_string(allocation.local[p][t]),
      ViolationKind::kLocalOverSubscription};
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kShiftOp: return "shift-op";
    case FaultKind::kDropEdge: return "drop-edge";
    case FaultKind::kSwapBinding: return "swap-binding";
    case FaultKind::kPerturbPeriod: return "perturb-period";
    case FaultKind::kOversubscribeResidue: return "oversubscribe-residue";
    case FaultKind::kCorruptLocalCount: return "corrupt-local";
  }
  return "unknown";
}

std::vector<FaultKind> AllFaultKinds() {
  return {FaultKind::kShiftOp,       FaultKind::kDropEdge,
          FaultKind::kSwapBinding,   FaultKind::kPerturbPeriod,
          FaultKind::kOversubscribeResidue, FaultKind::kCorruptLocalCount};
}

StatusOr<FaultPlan> ParseFaultSpec(std::string_view spec) {
  FaultPlan plan;
  std::string_view name = spec;
  const std::size_t colon = spec.find(':');
  if (colon != std::string_view::npos) {
    name = spec.substr(0, colon);
    const std::string_view seed = spec.substr(colon + 1);
    const auto [ptr, ec] = std::from_chars(
        seed.data(), seed.data() + seed.size(), plan.seed);
    if (ec != std::errc{} || ptr != seed.data() + seed.size())
      return Status{StatusCode::kParseError,
                    "bad fault seed '" + std::string(seed) + "'"};
  }
  for (FaultKind kind : AllFaultKinds()) {
    if (name == FaultKindName(kind)) {
      plan.kind = kind;
      return plan;
    }
  }
  return Status{StatusCode::kParseError,
                "unknown fault kind '" + std::string(name) +
                    "' (expected one of shift-op, drop-edge, swap-binding, "
                    "perturb-period, oversubscribe-residue, corrupt-local)"};
}

StatusOr<InjectedFault> InjectFault(const FaultPlan& plan,
                                    const SystemModel& model,
                                    SystemSchedule& schedule,
                                    Allocation& allocation,
                                    SystemBinding* binding) {
  Rng rng(plan.seed);
  switch (plan.kind) {
    case FaultKind::kShiftOp:
      return ShiftOp(rng, model, schedule);
    case FaultKind::kDropEdge:
      return DropEdge(rng, model, schedule);
    case FaultKind::kSwapBinding:
      return SwapBinding(rng, model, schedule, binding);
    case FaultKind::kPerturbPeriod:
      return PerturbPeriod(rng, model, allocation);
    case FaultKind::kOversubscribeResidue:
      return OversubscribeResidue(rng, model, allocation);
    case FaultKind::kCorruptLocalCount:
      return CorruptLocalCount(rng, model, allocation);
  }
  return Status{StatusCode::kInvalidArgument, "unknown fault kind"};
}

}  // namespace mshls
