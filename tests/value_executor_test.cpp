#include <gtest/gtest.h>

#include "fds/fds_scheduler.h"
#include "sim/value_executor.h"
#include "workloads/benchmarks.h"

namespace mshls {
namespace {

class ValueExecutorTest : public ::testing::Test {
 protected:
  SystemModel model_;
  PaperTypes types_ = AddPaperTypes(model_.library());

  const Block& AddBlockOf(DataFlowGraph g, int range) {
    const ProcessId p = model_.AddProcess(
        "p" + std::to_string(model_.process_count()));
    const BlockId b = model_.AddBlock(p, "b", std::move(g), range);
    EXPECT_TRUE(model_.Validate().ok());
    return model_.block(b);
  }

  /// Schedules with IFDS and allocates registers.
  std::pair<BlockSchedule, BlockRegisterAllocation> Prepare(const Block& b) {
    auto res = ScheduleBlockIfds(b, model_.library(), {});
    EXPECT_TRUE(res.ok());
    const auto lifetimes =
        ComputeLifetimes(b, model_.library(), res.value().schedule);
    return {res.value().schedule, AllocateRegisters(lifetimes)};
  }
};

TEST_F(ValueExecutorTest, ReferenceEvaluationIsDeterministic) {
  const Block& b = AddBlockOf(BuildDiffeq(types_), 10);
  const auto v1 = EvaluateGraph(b, model_.library());
  const auto v2 = EvaluateGraph(b, model_.library());
  EXPECT_EQ(v1, v2);
  ValueExecOptions other;
  other.input_seed = 99;
  const auto v3 = EvaluateGraph(b, model_.library(), other);
  EXPECT_NE(v1, v3);  // different inputs, different values
}

TEST_F(ValueExecutorTest, HandComputedChain) {
  // a = in0 + in1; m = a * (input); inputs are deterministic in the seed,
  // so just check consistency between direct and register execution and
  // the add/mult semantics on a fixed tiny case.
  DataFlowGraph g;
  const OpId a = g.AddOp(types_.add, "a");
  const OpId m = g.AddOp(types_.mult, "m");
  g.AddEdge(a, m);
  ASSERT_TRUE(g.Validate().ok());
  const Block& b = AddBlockOf(std::move(g), 5);
  auto [schedule, regs] = Prepare(b);
  const auto report =
      ExecuteBlockWithRegisters(b, model_.library(), schedule, regs);
  EXPECT_TRUE(report.ok) << report.mismatch;
  EXPECT_EQ(report.executed[a.index()], report.reference[a.index()]);
  EXPECT_EQ(report.executed[m.index()], report.reference[m.index()]);
}

TEST_F(ValueExecutorTest, BenchmarkGraphsExecuteCorrectly) {
  struct Case {
    DataFlowGraph graph;
    int range;
  };
  std::vector<Case> cases;
  cases.push_back({BuildDiffeq(types_), 12});
  cases.push_back({BuildEwf(types_), 21});
  cases.push_back({BuildFir16(types_), 10});
  cases.push_back({BuildArLattice(types_), 20});
  for (Case& c : cases) {
    const Block& b = AddBlockOf(std::move(c.graph), c.range);
    auto [schedule, regs] = Prepare(b);
    const auto report =
        ExecuteBlockWithRegisters(b, model_.library(), schedule, regs);
    EXPECT_TRUE(report.ok) << b.time_range << ": " << report.mismatch;
  }
}

TEST_F(ValueExecutorTest, RandomGraphsUnderRandomSeedsProperty) {
  Rng rng(777);
  for (int trial = 0; trial < 10; ++trial) {
    RandomDfgOptions options;
    options.ops = rng.NextInt(5, 20);
    options.layers = rng.NextInt(2, 5);
    DataFlowGraph g = BuildRandomDfg(types_, rng, options);
    const DelayFn delay = [&](OpId op) {
      return model_.library().type(g.op(op).type).delay;
    };
    const int range = g.CriticalPathLength(delay) + rng.NextInt(0, 6);
    const Block& b = AddBlockOf(std::move(g), range);
    auto [schedule, regs] = Prepare(b);
    ValueExecOptions exec;
    exec.input_seed = rng.NextU64();
    const auto report =
        ExecuteBlockWithRegisters(b, model_.library(), schedule, regs, exec);
    EXPECT_TRUE(report.ok) << "trial " << trial << ": " << report.mismatch;
  }
}

TEST_F(ValueExecutorTest, ClobberedRegisterIsDetected) {
  // Forge an undersized allocation: everything into register 0. Two live
  // values must collide and be reported as a clobber, not as silence.
  DataFlowGraph g;
  const OpId a = g.AddOp(types_.add, "a");
  const OpId b2 = g.AddOp(types_.add, "b");
  const OpId c = g.AddOp(types_.add, "c");
  g.AddEdge(a, c);
  g.AddEdge(b2, c);
  ASSERT_TRUE(g.Validate().ok());
  const Block& blk = AddBlockOf(std::move(g), 4);
  auto [schedule, regs] = Prepare(blk);
  ASSERT_GE(regs.register_count, 2);
  BlockRegisterAllocation forged = regs;
  forged.register_count = 1;
  for (auto& r : forged.reg_of) r = RegisterId{0};
  const auto report =
      ExecuteBlockWithRegisters(blk, model_.library(), schedule, forged);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.mismatch.find("clobbered"), std::string::npos);
}

TEST_F(ValueExecutorTest, PipelinedMultiplierLatencyRespected) {
  // Two mults back-to-back on the dependence chain: the consumer must see
  // the producer's value exactly delay cycles later, not earlier.
  DataFlowGraph g;
  const OpId m1 = g.AddOp(types_.mult, "m1");
  const OpId m2 = g.AddOp(types_.mult, "m2");
  g.AddEdge(m1, m2);
  ASSERT_TRUE(g.Validate().ok());
  const Block& b = AddBlockOf(std::move(g), 4);
  BlockSchedule schedule(2);
  schedule.set_start(m1, 0);
  schedule.set_start(m2, 2);  // exactly at the latency edge
  const auto lifetimes =
      ComputeLifetimes(b, model_.library(), schedule);
  const auto regs = AllocateRegisters(lifetimes);
  const auto report =
      ExecuteBlockWithRegisters(b, model_.library(), schedule, regs);
  EXPECT_TRUE(report.ok) << report.mismatch;
}

TEST_F(ValueExecutorTest, RegisterReuseAtLifetimeBoundaryIsSafe) {
  // a's value dies exactly when c is born; left-edge gives them one
  // register; the executor must confirm the timing convention is
  // consistent (write at end of the consumer's read cycle).
  DataFlowGraph g;
  const OpId a = g.AddOp(types_.add, "a");
  const OpId b2 = g.AddOp(types_.add, "b");   // reads a
  const OpId c = g.AddOp(types_.add, "c");    // reads b
  g.AddEdge(a, b2);
  g.AddEdge(b2, c);
  ASSERT_TRUE(g.Validate().ok());
  const Block& blk = AddBlockOf(std::move(g), 3);
  BlockSchedule schedule(3);
  schedule.set_start(a, 0);
  schedule.set_start(b2, 1);
  schedule.set_start(c, 2);
  const auto lifetimes = ComputeLifetimes(blk, model_.library(), schedule);
  const auto regs = AllocateRegisters(lifetimes);
  // a: [1,2), b: [2,3), c: [3,...): a and b can share a register with c.
  EXPECT_LE(regs.register_count, 2);
  const auto report =
      ExecuteBlockWithRegisters(blk, model_.library(), schedule, regs);
  EXPECT_TRUE(report.ok) << report.mismatch;
}

}  // namespace
}  // namespace mshls
