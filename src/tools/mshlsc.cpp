// mshlsc — command-line driver for the whole flow.
//
//   mshlsc <design.hls> [options]
//
//   --search-periods       run step S2 automatically (default: use the
//                          periods written in the source)
//   --search-assignments   run step S1+S2 automatically (overrides any
//                          share declarations in the source)
//   --local                schedule with the traditional pure-local
//                          assignment instead (comparison baseline)
//   --table                print the Table-1 style allocation report
//   --gantt                print per-block instance Gantt charts
//   --dot <dir>            write one Graphviz file per block into <dir>
//   --rtl <file>           write the Verilog netlist
//   --json <file>          write schedule + allocation as JSON
//   --simulate <n>         run n random grid-aligned activations per
//                          process through the conflict simulator
//   --seed <s>             seed for --simulate (default 1)
//
// Exit code 0 on success (including a conflict-free simulation), 1 on any
// error or detected conflict.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bind/area_report.h"
#include "bind/binding.h"
#include "dfg/dot_export.h"
#include "frontend/lowering.h"
#include "modulo/assignment_search.h"
#include "modulo/baseline.h"
#include "modulo/coupled_scheduler.h"
#include "modulo/period_search.h"
#include "report/experiment_report.h"
#include "report/gantt.h"
#include "report/json_export.h"
#include "rtl/verilog_gen.h"
#include "sim/simulator.h"

using namespace mshls;

namespace {

struct Args {
  std::string input;
  bool search_periods = false;
  bool search_assignments = false;
  bool local = false;
  bool table = false;
  bool gantt = false;
  std::string dot_dir;
  std::string rtl_file;
  std::string json_file;
  int simulate = 0;
  std::uint64_t seed = 1;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <design.hls> [--search-periods] "
               "[--search-assignments] [--local] [--table] [--gantt] "
               "[--dot <dir>] [--rtl <file>] [--json <file>] [--simulate <n>] [--seed <s>]\n",
               argv0);
  return 1;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  args->input = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--search-periods") args->search_periods = true;
    else if (flag == "--search-assignments") args->search_assignments = true;
    else if (flag == "--local") args->local = true;
    else if (flag == "--table") args->table = true;
    else if (flag == "--gantt") args->gantt = true;
    else if (flag == "--dot") {
      const char* v = next();
      if (!v) return false;
      args->dot_dir = v;
    } else if (flag == "--rtl") {
      const char* v = next();
      if (!v) return false;
      args->rtl_file = v;
    } else if (flag == "--json") {
      const char* v = next();
      if (!v) return false;
      args->json_file = v;
    } else if (flag == "--simulate") {
      const char* v = next();
      if (!v) return false;
      args->simulate = std::atoi(v);
    } else if (flag == "--seed") {
      const char* v = next();
      if (!v) return false;
      args->seed = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage(argv[0]);

  std::ifstream in(args.input);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", args.input.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  auto model_or = CompileSystem(buf.str());
  if (!model_or.ok()) {
    std::fprintf(stderr, "%s: %s\n", args.input.c_str(),
                 model_or.status().ToString().c_str());
    return 1;
  }
  SystemModel model = std::move(model_or).value();
  std::printf("compiled %s: %zu process(es), %zu block(s), %zu resource "
              "type(s)\n",
              args.input.c_str(), model.process_count(), model.block_count(),
              model.library().size());

  // Schedule per the requested mode.
  CoupledResult result;
  if (args.local) {
    auto run = ScheduleLocalBaseline(model, CoupledParams{});
    if (!run.ok()) {
      std::fprintf(stderr, "scheduling failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    result = std::move(run).value();
    std::printf("mode: traditional pure-local scheduling\n");
  } else if (args.search_assignments) {
    auto search = SearchAssignments(model, CoupledParams{});
    if (!search.ok()) {
      std::fprintf(stderr, "assignment search failed: %s\n",
                   search.status().ToString().c_str());
      return 1;
    }
    std::printf("assignment search: %ld combinations, best area %d\n",
                search.value().combinations, search.value().area);
    for (const AssignmentChoice& c : search.value().choices)
      std::printf("  %-8s -> %s%s\n",
                  model.library().type(c.type).name.c_str(),
                  c.global ? "global, period " : "local",
                  c.global ? std::to_string(c.period).c_str() : "");
    result = std::move(search.value().best);
  } else if (args.search_periods) {
    auto search = SearchPeriods(model, CoupledParams{});
    if (!search.ok()) {
      std::fprintf(stderr, "period search failed: %s\n",
                   search.status().ToString().c_str());
      return 1;
    }
    std::printf("period search: %ld combinations, %ld filtered (eq. 3), "
                "%ld scheduled\n",
                search.value().combinations, search.value().filtered_out,
                search.value().evaluated);
    result = std::move(search.value().best);
  } else {
    CoupledScheduler scheduler(model, CoupledParams{});
    auto run = scheduler.Run();
    if (!run.ok()) {
      std::fprintf(stderr, "scheduling failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    result = std::move(run).value();
  }
  std::printf("allocation: %s  (%d iterations)\n",
              SummarizeAllocation(model, result.allocation).c_str(),
              result.iterations);

  if (args.table)
    std::printf("\n%s", RenderTable1(model, result).c_str());

  // Binding (needed by gantt/rtl).
  auto binding = BindSystem(model, result.schedule, result.allocation);
  if (!binding.ok()) {
    std::fprintf(stderr, "binding failed: %s\n",
                 binding.status().ToString().c_str());
    return 1;
  }
  const AreaBreakdown area = ComputeAreaBreakdown(
      model, result.schedule, result.allocation, binding.value());
  std::printf("full area (FUs + registers + muxes): %.2f\n", area.total_area);

  if (args.gantt) {
    for (const Block& b : model.blocks())
      std::printf("\n%s",
                  RenderGantt(model, b.id, result.schedule, binding.value())
                      .c_str());
  }

  if (!args.dot_dir.empty()) {
    for (const Block& b : model.blocks()) {
      DotOptions options;
      options.type_label = [&](ResourceTypeId t) {
        return model.library().type(t).name;
      };
      const BlockSchedule* sched = &result.schedule.of(b.id);
      options.start_step = [sched](OpId op) { return sched->start(op); };
      const std::string path = args.dot_dir + "/" + b.name + ".dot";
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
      }
      out << ToDot(b.graph, b.name, options);
      std::printf("wrote %s\n", path.c_str());
    }
  }

  if (!args.rtl_file.empty()) {
    auto design = GenerateRtl(model, result.schedule, result.allocation,
                              binding.value());
    if (!design.ok()) {
      std::fprintf(stderr, "rtl failed: %s\n",
                   design.status().ToString().c_str());
      return 1;
    }
    std::ofstream out(args.rtl_file);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", args.rtl_file.c_str());
      return 1;
    }
    out << design.value().source;
    std::printf("wrote %s (%zu modules)\n", args.rtl_file.c_str(),
                design.value().module_names.size());
  }

  if (!args.json_file.empty()) {
    std::ofstream out(args.json_file);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", args.json_file.c_str());
      return 1;
    }
    out << ResultToJson(model, result);
    std::printf("wrote %s\n", args.json_file.c_str());
  }

  if (args.simulate > 0) {
    SystemSimulator sim(model, result.schedule, result.allocation);
    TraceOptions options;
    options.seed = args.seed;
    options.activations_per_process = args.simulate;
    const auto trace = RandomActivationTrace(model, options);
    const SimReport report = sim.Run(trace);
    std::printf("simulated %zu activations over %lld cycles: %s\n",
                trace.size(), static_cast<long long>(report.horizon),
                report.ok ? "conflict-free" : "CONFLICTS");
    if (!report.ok) {
      for (const SimViolation& v : report.violations)
        std::fprintf(stderr, "  t=%lld: %s\n",
                     static_cast<long long>(v.time), v.detail.c_str());
      return 1;
    }
  }
  return 0;
}
