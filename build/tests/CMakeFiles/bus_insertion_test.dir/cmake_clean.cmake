file(REMOVE_RECURSE
  "CMakeFiles/bus_insertion_test.dir/bus_insertion_test.cpp.o"
  "CMakeFiles/bus_insertion_test.dir/bus_insertion_test.cpp.o.d"
  "bus_insertion_test"
  "bus_insertion_test.pdb"
  "bus_insertion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bus_insertion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
