#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/build_info.h"

namespace mshls::obs {
namespace {

long long NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

#if !defined(MSHLS_OBS_DISABLED)
namespace internal {
std::atomic<Tracer*> g_tracer{nullptr};
}  // namespace internal

void InstallGlobalTracer(Tracer* tracer) {
  internal::g_tracer.store(tracer, std::memory_order_release);
}
#endif

TraceArgs& TraceArgs::I(const char* key, long long v) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += key;
  body_ += "\":";
  body_ += std::to_string(v);
  return *this;
}

TraceArgs& TraceArgs::D(const char* key, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += key;
  body_ += "\":";
  body_ += buf;
  return *this;
}

TraceArgs& TraceArgs::S(const char* key, const std::string& v) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += key;
  body_ += "\":\"";
  body_ += JsonEscape(v);
  body_ += '"';
  return *this;
}

std::string TraceArgs::Json() {
  if (body_.empty()) return {};
  std::string out;
  out.reserve(body_.size() + 2);
  out += '{';
  out += body_;
  out += '}';
  body_.clear();
  return out;
}

void TraceTrack::Begin(std::string name, std::string args_json) {
  events_.push_back(
      TraceEvent{'B', NowNs(), std::move(name), std::move(args_json)});
}

void TraceTrack::End() {
  events_.push_back(TraceEvent{'E', NowNs(), {}, {}});
}

void TraceTrack::Instant(std::string name, std::string args_json) {
  events_.push_back(
      TraceEvent{'i', NowNs(), std::move(name), std::move(args_json)});
}

TraceTrack& Tracer::GetTrack(const std::string& name, bool wall_only) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = named_.find(name);
  if (it != named_.end()) return *it->second;
  tracks_.push_back(
      std::unique_ptr<TraceTrack>(new TraceTrack(name, wall_only)));
  named_[name] = tracks_.back().get();
  return *tracks_.back();
}

TraceTrack& Tracer::NewTrack(const std::string& base, bool wall_only) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int serial = ++next_serial_[base];
  std::string name = base + "#" + std::to_string(serial);
  tracks_.push_back(
      std::unique_ptr<TraceTrack>(new TraceTrack(std::move(name), wall_only)));
  return *tracks_.back();
}

long long Tracer::TotalEvents() const {
  std::lock_guard<std::mutex> lock(mutex_);
  long long n = 0;
  for (const auto& t : tracks_) n += static_cast<long long>(t->events().size());
  return n;
}

std::string Tracer::ToChromeJson(TraceClock clock) const {
  std::lock_guard<std::mutex> lock(mutex_);

  // Canonical track order: sorted by name, independent of creation
  // interleaving.
  std::vector<const TraceTrack*> tracks;
  tracks.reserve(tracks_.size());
  for (const auto& t : tracks_) {
    if (clock == TraceClock::kLogical && t->wall_only()) continue;
    tracks.push_back(t.get());
  }
  std::sort(tracks.begin(), tracks.end(),
            [](const TraceTrack* a, const TraceTrack* b) {
              return a->name() < b->name();
            });

  long long min_ns = 0;
  if (clock == TraceClock::kWall) {
    bool seen = false;
    for (const TraceTrack* t : tracks) {
      for (const TraceEvent& e : t->events()) {
        if (!seen || e.wall_ns < min_ns) min_ns = e.wall_ns;
        seen = true;
      }
    }
  }

  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"build\":";
  out += BuildInfoJson();
  out += ",\"clock\":\"";
  out += clock == TraceClock::kLogical ? "logical" : "wall";
  out += "\"},\"traceEvents\":[\n";
  out +=
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"mshls\"}}";

  char buf[64];
  long long logical_ts = 0;
  for (size_t ti = 0; ti < tracks.size(); ++ti) {
    const TraceTrack& t = *tracks[ti];
    const int tid = static_cast<int>(ti) + 1;
    out += ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
           JsonEscape(t.name()) + "\"}}";
    for (const TraceEvent& e : t.events()) {
      out += ",\n{\"ph\":\"";
      out += e.phase;
      out += "\",\"pid\":1,\"tid\":" + std::to_string(tid) + ",\"ts\":";
      if (clock == TraceClock::kLogical) {
        out += std::to_string(logical_ts++);
      } else {
        std::snprintf(buf, sizeof(buf), "%.3f",
                      static_cast<double>(e.wall_ns - min_ns) / 1000.0);
        out += buf;
      }
      if (e.phase != 'E') {
        out += ",\"name\":\"" + JsonEscape(e.name) + "\"";
      }
      if (e.phase == 'i') out += ",\"s\":\"t\"";
      if (!e.args_json.empty()) out += ",\"args\":" + e.args_json;
      out += "}";
    }
  }
  out += "\n]}\n";
  return out;
}

std::string Tracer::SummaryText() const {
  std::lock_guard<std::mutex> lock(mutex_);

  std::vector<const TraceTrack*> tracks;
  tracks.reserve(tracks_.size());
  for (const auto& t : tracks_) tracks.push_back(t.get());
  std::sort(tracks.begin(), tracks.end(),
            [](const TraceTrack* a, const TraceTrack* b) {
              return a->name() < b->name();
            });

  std::string out;
  char buf[192];
  for (const TraceTrack* t : tracks) {
    // Aggregate per span name: count and inclusive wall time (matching
    // B/E pairs via a stack); instants count separately.
    struct Agg {
      long long spans = 0;
      long long instants = 0;
      long long wall_ns = 0;
    };
    std::map<std::string, Agg> by_name;
    std::vector<std::pair<const std::string*, long long>> stack;
    for (const TraceEvent& e : t->events()) {
      switch (e.phase) {
        case 'B': {
          Agg& a = by_name[e.name];
          ++a.spans;
          stack.emplace_back(&e.name, e.wall_ns);
          break;
        }
        case 'E':
          if (!stack.empty()) {
            by_name[*stack.back().first].wall_ns +=
                e.wall_ns - stack.back().second;
            stack.pop_back();
          }
          break;
        case 'i': ++by_name[e.name].instants; break;
        default: break;
      }
    }
    std::snprintf(buf, sizeof(buf), "track %-28s %8zu events%s\n",
                  t->name().c_str(), t->events().size(),
                  t->wall_only() ? "  (wall-only)" : "");
    out += buf;
    for (const auto& [name, agg] : by_name) {
      if (agg.spans > 0) {
        std::snprintf(buf, sizeof(buf),
                      "  %-30s %8lld spans   %12.3f ms\n", name.c_str(),
                      agg.spans, static_cast<double>(agg.wall_ns) / 1e6);
      } else {
        std::snprintf(buf, sizeof(buf), "  %-30s %8lld instants\n",
                      name.c_str(), agg.instants);
      }
      out += buf;
    }
  }
  return out;
}

}  // namespace mshls::obs
