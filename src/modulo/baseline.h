// The traditional comparison point of the paper's experiment: "a pure local
// assignment of the resource types with identical parameters" (§7) — every
// process is scheduled independently with block-local IFDS forces and owns
// at least one instance of every type it uses.
#pragma once

#include "common/status.h"
#include "modulo/coupled_scheduler.h"

namespace mshls {

/// Clones the sharing assignment of `model` to all-local, schedules every
/// block with unmodified IFDS, and restores the original assignment before
/// returning. The result's allocation therefore contains only local
/// instance counts.
[[nodiscard]] StatusOr<CoupledResult> ScheduleLocalBaseline(
    SystemModel& model, const CoupledParams& params);

}  // namespace mshls
