// Observability subsystem (src/obs, DESIGN.md §2 row 27): metrics
// registry semantics, trace model and Chrome JSON export, and the
// determinism contract — recording on, the coupled scheduler produces a
// bit-identical logical-clock trace and identical stable counters for any
// --jobs value, on fuzz-generated models and the C1-scale workload alike.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/build_info.h"
#include "engine/job_service.h"
#include "fuzz/generator.h"
#include "modulo/coupled_scheduler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workloads/benchmarks.h"

namespace mshls {
namespace {

/// Every test runs with recording on and a clean registry, and leaves the
/// process-global switch off again (other suites expect probes dormant).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::MetricsRegistry::Global().Reset();
    obs::SetEnabled(true);
  }
  void TearDown() override {
    obs::UninstallGlobalTracer();
    obs::SetEnabled(false);
    obs::MetricsRegistry::Global().Reset();
  }
};

TEST_F(ObsTest, ProbesAreCompiledInForThisSuite) {
  // The determinism tests below are vacuous with MSHLS_TRACE=OFF; the
  // obs label is only added to test trees that compile the probes in.
  EXPECT_TRUE(obs::kCompiledIn);
  EXPECT_TRUE(obs::Enabled());
}

TEST_F(ObsTest, CounterRespectsTheEnableSwitch) {
  obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "test.counter", obs::MetricKind::kStable);
  c.Add(3);
  c.Add();
  EXPECT_EQ(c.value(), 4);
  obs::SetEnabled(false);
  c.Add(100);
  EXPECT_EQ(c.value(), 4) << "disabled probes must not record";
  obs::SetEnabled(true);
}

TEST_F(ObsTest, GaugeTracksMaximum) {
  obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "test.gauge", obs::MetricKind::kTiming);
  g.UpdateMax(7);
  g.UpdateMax(3);
  EXPECT_EQ(g.value(), 7);
  g.Set(2);
  EXPECT_EQ(g.value(), 2);
}

TEST_F(ObsTest, HistogramUsesLogScaleBuckets) {
  obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "test.histogram", obs::MetricKind::kStable);
  // Bucket i holds values of bit-width i; bucket 0 is the <= 0 sink.
  h.Observe(0);   // bucket 0
  h.Observe(1);   // bucket 1
  h.Observe(2);   // bucket 2
  h.Observe(3);   // bucket 2
  h.Observe(4);   // bucket 3
  h.Observe(1'000'000);
  EXPECT_EQ(h.count(), 6);
  EXPECT_EQ(h.sum(), 1'000'010);
  EXPECT_EQ(h.bucket(0), 1);
  EXPECT_EQ(h.bucket(1), 1);
  EXPECT_EQ(h.bucket(2), 2);
  EXPECT_EQ(h.bucket(3), 1);
  EXPECT_EQ(h.bucket(obs::Histogram::BucketIndex(1'000'000)), 1);
  EXPECT_EQ(obs::Histogram::BucketIndex(1'000'000), 20);  // bit width of 1e6
  EXPECT_EQ(obs::Histogram::BucketUpperEdge(3), 8);
}

TEST_F(ObsTest, MetricsJsonFiltersTimingKind) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("stable.one", obs::MetricKind::kStable).Add(5);
  reg.GetCounter("timing.one", obs::MetricKind::kTiming).Add(9);
  const std::string stable_only = reg.ToJson(/*include_timing=*/false);
  EXPECT_NE(stable_only.find("stable.one"), std::string::npos);
  EXPECT_EQ(stable_only.find("timing.one"), std::string::npos)
      << "timing metrics are machine-dependent and must stay out of the "
         "deterministic export";
  const std::string all = reg.ToJson(/*include_timing=*/true);
  EXPECT_NE(all.find("timing.one"), std::string::npos);
}

TEST_F(ObsTest, TraceArgsRendersTypedJson) {
  const std::string json = obs::TraceArgs()
                               .I("count", 42)
                               .D("score", 1.5)
                               .S("name", "a\"b")
                               .Json();
  EXPECT_EQ(json, "{\"count\":42,\"score\":1.5,\"name\":\"a\\\"b\"}");
}

TEST_F(ObsTest, TracerProducesBalancedChromeJson) {
  obs::Tracer tracer;
  obs::TraceTrack* track = &tracer.GetTrack("main");
  {
    obs::ScopedSpan outer(track, "outer",
                          obs::TraceArgs().I("level", 0).Json());
    obs::ScopedSpan inner(track, "inner");
    track->Instant("marker", obs::TraceArgs().S("why", "test").Json());
  }
  EXPECT_EQ(tracer.TotalEvents(), 5);  // 2 x B/E + 1 x i
  const std::string json = tracer.ToChromeJson(obs::TraceClock::kLogical);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"clock\":\"logical\""), std::string::npos);
  // The build stamp rides in the header.
  EXPECT_NE(json.find("\"git_hash\""), std::string::npos);
  const std::string summary = tracer.SummaryText();
  EXPECT_NE(summary.find("main"), std::string::npos);
}

TEST_F(ObsTest, WallOnlyTracksStayOutOfTheLogicalExport) {
  obs::Tracer tracer;
  tracer.GetTrack("semantic").Instant("kept");
  tracer.NewTrack("timing", /*wall_only=*/true).Instant("dropped");
  const std::string logical = tracer.ToChromeJson(obs::TraceClock::kLogical);
  EXPECT_NE(logical.find("kept"), std::string::npos);
  EXPECT_EQ(logical.find("dropped"), std::string::npos);
  const std::string wall = tracer.ToChromeJson(obs::TraceClock::kWall);
  EXPECT_NE(wall.find("dropped"), std::string::npos);
}

TEST_F(ObsTest, NewTrackHandsOutUniqueNames) {
  obs::Tracer tracer;
  obs::TraceTrack& a = tracer.NewTrack("job");
  obs::TraceTrack& b = tracer.NewTrack("job");
  EXPECT_NE(&a, &b);
  EXPECT_NE(a.name(), b.name());
}

/// The C1-scale generator (bench_coupled): n processes of `ops` random ops
/// each, global mult + add pools with period 4.
SystemModel MakeCoupledSystem(int n_processes, int ops) {
  SystemModel model;
  const PaperTypes t = AddPaperTypes(model.library());
  Rng rng(42);
  std::vector<ProcessId> procs;
  for (int i = 0; i < n_processes; ++i) {
    RandomDfgOptions options;
    options.ops = ops;
    options.layers = 3;
    options.mult_probability = 0.3;
    DataFlowGraph g = BuildRandomDfg(t, rng, options);
    const ProcessId p = model.AddProcess("p" + std::to_string(i), 16);
    model.AddBlock(p, "b", std::move(g), 16);
    procs.push_back(p);
  }
  model.MakeGlobal(t.mult, procs);
  model.SetPeriod(t.mult, 4);
  model.MakeGlobal(t.add, procs);
  model.SetPeriod(t.add, 4);
  EXPECT_TRUE(model.Validate().ok());
  return model;
}

/// Runs the coupled scheduler with a fresh tracer + registry and returns
/// (logical trace JSON, stable metrics JSON).
std::pair<std::string, std::string> TracedRun(const SystemModel& model,
                                              int jobs) {
  obs::MetricsRegistry::Global().Reset();
  obs::Tracer tracer;
  obs::InstallGlobalTracer(&tracer);
  CoupledParams params;
  params.jobs = jobs;
  CoupledScheduler scheduler(model, params);
  auto result = scheduler.Run();
  obs::UninstallGlobalTracer();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return {tracer.ToChromeJson(obs::TraceClock::kLogical),
          obs::MetricsRegistry::Global().ToJson(/*include_timing=*/false)};
}

TEST_F(ObsTest, TraceIsBitIdenticalAcrossJobCounts) {
  // The acceptance workload: 10 processes x 24 ops.
  const SystemModel model = MakeCoupledSystem(10, 24);
  const auto reference = TracedRun(model, 1);
  EXPECT_NE(reference.first.find("\"name\":\"narrow\""), std::string::npos)
      << "the decision log must appear in the trace";
  for (int jobs : {2, 8}) {
    const auto run = TracedRun(model, jobs);
    EXPECT_EQ(reference.first, run.first)
        << "logical trace diverged at jobs=" << jobs;
    EXPECT_EQ(reference.second, run.second)
        << "stable metrics diverged at jobs=" << jobs;
  }
}

TEST_F(ObsTest, TraceIsBitIdenticalOnFuzzedModels) {
  FuzzGenOptions options;
  options.infeasible_probability = 0;
  options.grid_hostile_probability = 0;
  int covered = 0;
  for (std::uint64_t seed = 1; seed <= 12 && covered < 5; ++seed) {
    GeneratedCase c = GenerateSystem(seed, options);
    if (c.cls != CaseClass::kClean) continue;
    if (!c.model.Validate().ok()) continue;
    const auto reference = TracedRun(c.model, 1);
    const auto parallel = TracedRun(c.model, 4);
    EXPECT_EQ(reference.first, parallel.first) << "seed " << seed;
    EXPECT_EQ(reference.second, parallel.second) << "seed " << seed;
    ++covered;
  }
  EXPECT_GE(covered, 3) << "generator produced too few clean cases";
}

TEST_F(ObsTest, SchedulerMirrorsStatsIntoTheRegistry) {
  const SystemModel model = MakeCoupledSystem(2, 8);
  obs::MetricsRegistry::Global().Reset();
  CoupledScheduler scheduler(model, CoupledParams{});
  auto result = scheduler.Run();
  ASSERT_TRUE(result.ok());
  const CoupledStats& stats = result.value().stats;
  EXPECT_GT(stats.iterations, 0);
  EXPECT_EQ(stats.iterations, result.value().iterations);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  EXPECT_EQ(reg.GetCounter("coupled.iterations", obs::MetricKind::kStable)
                .value(),
            stats.iterations);
  EXPECT_EQ(reg.GetCounter("coupled.candidates.evaluated",
                           obs::MetricKind::kStable)
                .value(),
            stats.candidates_evaluated);
}

TEST_F(ObsTest, BatchSummaryFoldsResults) {
  std::vector<JobResult> results(3);
  results[0].status = Status::Ok();
  results[0].rung = DegradationRung::kAsRequested;
  results[0].evaluated = 10;
  results[0].cache_hits = 4;
  results[0].wall_ms = 1.5;
  results[0].attempts.resize(1);
  results[1].status = Status::Ok();
  results[1].rung = DegradationRung::kLocalBaseline;
  results[1].evaluated = 6;
  results[1].cache_hits = 2;
  results[1].attempts.resize(3);
  results[2].status = Status{StatusCode::kInfeasible, "too tight"};
  results[2].attempts.resize(2);
  CacheStats cache;
  cache.hits = 6;
  cache.misses = 10;
  const BatchSummary summary = SummarizeBatch(results, cache);
  EXPECT_EQ(summary.total, 3u);
  EXPECT_EQ(summary.succeeded, 2u);
  EXPECT_EQ(summary.failed, 1u);
  EXPECT_EQ(summary.rung_counts[static_cast<std::size_t>(
                DegradationRung::kAsRequested)],
            1u);
  EXPECT_EQ(summary.rung_counts[static_cast<std::size_t>(
                DegradationRung::kLocalBaseline)],
            1u);
  EXPECT_EQ(summary.attempts, 6u);
  EXPECT_EQ(summary.evaluated, 16);
  EXPECT_EQ(summary.cache_hits, 6);
  EXPECT_DOUBLE_EQ(summary.HitRate(), 6.0 / 16.0);
  EXPECT_DOUBLE_EQ(summary.wall_ms_sum, 1.5);
}

TEST_F(ObsTest, BuildInfoIsPopulated) {
  const BuildInfo& info = GetBuildInfo();
  EXPECT_STRNE(info.version, "");
  EXPECT_STRNE(info.compiler, "");
  EXPECT_NE(BuildInfoString().find("git"), std::string::npos);
  const std::string json = BuildInfoJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"trace_compiled_in\":true"), std::string::npos);
}

}  // namespace
}  // namespace mshls
