// Binary (de)serialization of a CoupledResult for the persistent
// fingerprint cache (serve/disk_cache.h).
//
// Only the schedule's start steps and the run's stable stats are stored;
// the allocation is *re-derived* from (model, schedule) on load via
// ComputeAllocation — that is exactly how CoupledScheduler::Run produced
// it, so a decoded result is bit-identical to the original, and the
// format stays a few bytes per operation instead of persisting the whole
// authorization machinery.
//
// Decoding trusts nothing: the byte stream is validated structurally
// (length-checked reads), against the model (block/op counts must match)
// and semantically (ValidateSystemSchedule) before the result is used.
// Any mismatch is a typed error — the disk cache turns it into a skipped
// entry, never a crash.
#pragma once

#include <string>
#include <string_view>

#include "common/status.h"
#include "modulo/coupled_scheduler.h"

namespace mshls::serve {

/// Bumped whenever the byte layout changes; entries written by another
/// format version are skipped on load.
inline constexpr std::uint32_t kResultFormatVersion = 1;

[[nodiscard]] std::string EncodeResult(const CoupledResult& result);

/// Rebuilds the result against `model` (the model the fingerprint key was
/// derived from). Fails with kInvalidArgument on any structural or
/// semantic mismatch.
[[nodiscard]] StatusOr<CoupledResult> DecodeResult(std::string_view bytes,
                                                   const SystemModel& model);

}  // namespace mshls::serve
