file(REMOVE_RECURSE
  "CMakeFiles/mshls_workloads.dir/benchmarks.cpp.o"
  "CMakeFiles/mshls_workloads.dir/benchmarks.cpp.o.d"
  "CMakeFiles/mshls_workloads.dir/paper_system.cpp.o"
  "CMakeFiles/mshls_workloads.dir/paper_system.cpp.o.d"
  "libmshls_workloads.a"
  "libmshls_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mshls_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
