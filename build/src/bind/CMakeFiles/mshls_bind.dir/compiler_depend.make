# Empty compiler generated dependencies file for mshls_bind.
# This may be replaced when dependencies are built.
