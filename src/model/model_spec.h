// Editable, index-based description of a SystemModel.
//
// SystemModel is build-once (ids are handed out on insertion and woven into
// graphs, groups and blocks), which is right for the schedulers but wrong
// for anything that edits a system after the fact: the fuzz harness
// permutes processes and rotates phases, the shrinker deletes
// ops/edges/blocks/processes one at a time, and online repair
// (modulo/repair.h) applies live workload deltas to a scheduled system.
// ModelSpec is the editable intermediate: plain vectors with positional
// references, extracted from a model and materialized back into a fresh,
// validated one. Round trip: BuildModel(ExtractSpec(m)) is structurally
// identical to m (same types, graphs, ranges, phases, S1/S2 state).
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "model/system_model.h"

namespace mshls {

struct SpecOp {
  int type = 0;  // index into ModelSpec::types
  std::string name;
};

struct SpecEdge {
  int from = 0;  // op indices within the owning block
  int to = 0;
};

struct SpecBlock {
  std::string name;
  int time_range = 0;
  int phase = 0;
  std::vector<SpecOp> ops;
  std::vector<SpecEdge> edges;
};

struct SpecProcess {
  std::string name;
  int deadline = 0;
  std::vector<SpecBlock> blocks;
};

struct SpecType {
  std::string name;
  int delay = 1;
  int dii = 1;
  int area = 1;
};

struct SpecShare {
  int type = 0;                 // index into types
  std::vector<int> processes;   // indices into processes
  int period = 1;
};

struct ModelSpec {
  std::vector<SpecType> types;
  std::vector<SpecProcess> processes;
  std::vector<SpecShare> shares;

  [[nodiscard]] int TotalOps() const;
  [[nodiscard]] int TotalEdges() const;
};

/// Snapshot of a model (the model need not have been Validate()d yet; the
/// graphs are read structurally).
[[nodiscard]] ModelSpec ExtractSpec(const SystemModel& model);

/// Materializes and validates. Structural errors (dangling indices, empty
/// blocks) and model-level infeasibility come back as the status.
[[nodiscard]] StatusOr<SystemModel> BuildModel(const ModelSpec& spec);

}  // namespace mshls
