// Step (S2): assigning a period to every global resource type.
//
// The paper generates candidate period sets "by a permutation" and filters
// most of them "by equation 3 before scheduling" (§7). This module
// implements that search:
//  * candidate periods of a global type g are the union over its group of
//    the divisors of each member's block time ranges (a period that tiles
//    some member's activation window is worth permuting over);
//  * a combination is kept only if, for every process p, the resulting grid
//    spacing s_p = lcm{lambda_g : g in G_p} (paper eq. 3) divides every
//    block time range of p — otherwise activations of p could not be
//    scheduled back-to-back on the grid; this is the filter that discards
//    "most sets before scheduling";
//  * every surviving combination is scheduled with the coupled algorithm
//    and the minimum-area result wins (ties: larger periods first, since a
//    larger period lets more processes share one instance, paper §3.2).
#pragma once

#include <vector>

#include "common/status.h"
#include "modulo/coupled_scheduler.h"
#include "modulo/period_config.h"
#include "modulo/schedule_cache.h"

namespace mshls {

struct PeriodSearchOptions {
  /// Candidate-set generation: kHarmonic (default) enumerates only the
  /// divisor-of-gcd sets that can survive eq. 3 and prunes by the
  /// utilization area floor; kExhaustive is the original full divisor-union
  /// enumeration kept as the referee. Both modes produce the same winner
  /// (period vector, schedule, area) — see modulo/period_config.h.
  PeriodConfigurator configurator = PeriodConfigurator::kHarmonic;
  /// Cap on scheduled combinations (after filtering); 0 = unlimited.
  int max_evaluations = 0;
  /// Worker threads for the candidate fan-out; <= 1 schedules serially.
  /// Parallel output is bit-identical to serial: every candidate is
  /// evaluated on its own model copy and the reduction runs in canonical
  /// enumeration order. With jobs > 1 any CoupledObserver in the params is
  /// ignored (it would be invoked concurrently).
  int jobs = 1;
  /// Optional shared result cache: candidates already scheduled (e.g. by a
  /// previous sweep iteration) are served from the cache. May be shared
  /// across threads and searches.
  ScheduleCache* cache = nullptr;
  /// Optional persistent second tier behind `cache` (must be thread-safe;
  /// see modulo/schedule_cache.h). Warm-starts the search across process
  /// restarts.
  ScheduleStore* store = nullptr;
};

struct PeriodSearchResult {
  /// Chosen period per global type, aligned with model.GlobalTypes().
  std::vector<int> periods;
  CoupledResult best;
  int area = 0;
  /// Search statistics: raw combination count, how many eq.-3 filtering
  /// removed, how many were actually scheduled.
  long combinations = 0;
  long filtered_out = 0;
  long evaluated = 0;
  /// Survivors skipped by the utilization-bound prune (kHarmonic only):
  /// the probe — the lexicographically largest survivor, the tie-break
  /// favorite — already met the certified area floor, so no other
  /// combination can win or tie.
  long pruned = 0;
  /// Of `evaluated`, how many were served from the result cache.
  long cache_hits = 0;
  /// Of `cache_hits`, how many came from the persistent second tier.
  long store_hits = 0;
};

/// Explores period assignments for the global types of `model` (S1 must be
/// done; any pre-set periods are overwritten). On success the model's
/// periods are left set to the winning combination.
[[nodiscard]] StatusOr<PeriodSearchResult> SearchPeriods(
    SystemModel& model, const CoupledParams& params,
    const PeriodSearchOptions& options = {});

/// Candidate periods of one global type under the divisor rule above.
[[nodiscard]] std::vector<int> CandidatePeriods(const SystemModel& model,
                                                ResourceTypeId type);

/// The eq.-3 grid filter applied to the currently set periods.
[[nodiscard]] bool PeriodsCompatible(const SystemModel& model);

}  // namespace mshls
