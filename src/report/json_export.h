// Machine-readable JSON export of scheduling results — the interface for
// downstream tooling (visualizers, regression dashboards). Hand-rolled
// writer (no third-party dependency); strings are escaped per RFC 8259.
#pragma once

#include <string>

#include "bind/binding.h"
#include "modulo/coupled_scheduler.h"

namespace mshls {

/// {"processes":[{name, deadline, blocks:[{name, time_range, phase,
///   ops:[{id, name, type, start}]}]}],
///  "allocation":{"local":[{process,type,instances}],
///    "global":[{type, period, instances,
///      users:[{process, authorization:[...]}], profile:[...]}]},
///  "area": N, "iterations": N,
///  "stats":{iterations, candidates_evaluated, candidates_repriced,
///    candidates_reused, tier1_invalidations, tier2_invalidations}}
[[nodiscard]] std::string ResultToJson(const SystemModel& model,
                                       const CoupledResult& result);

/// Instance table of a binding:
/// {"instances":[{id, name, type, global, owner, index}],
///  "ops":[{block, op, instance}]}
[[nodiscard]] std::string BindingToJson(const SystemModel& model,
                                        const SystemBinding& binding);

/// Minimal JSON string escaping (quotes, backslash, control chars).
[[nodiscard]] std::string JsonEscape(const std::string& s);

}  // namespace mshls
