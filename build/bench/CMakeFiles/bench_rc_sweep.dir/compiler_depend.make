# Empty compiler generated dependencies file for bench_rc_sweep.
# This may be replaced when dependencies are built.
