// In-tree Verilog simulator for the subset emitted by rtl/verilog_gen.
//
// Closes the verification loop on the generated hardware *text* itself:
// the RTL is parsed back, elaborated (instances flattened, the WIDTH
// parameter resolved), and simulated cycle-accurately with two-phase
// semantics — continuous assignments and always @* blocks settle to a
// fixed point between clock edges; always @(posedge clk) blocks evaluate
// against pre-edge values and commit their non-blocking assignments
// together. Tests drive the top module's ports directly (Poke/Peek/Step)
// and compare sink outputs against the data-flow-graph reference, so a
// bug anywhere in scheduler, binding, register allocation, mux
// partitioning or the emitter itself surfaces as a value mismatch.
//
// Supported constructs (exactly what the generator produces):
//   module/endmodule with one optional `parameter WIDTH = N`;
//   input/output wire/reg ports with optional [msb:0] ranges;
//   wire/reg declarations, `wire [..] name = expr;` initialised nets;
//   assign; always @(posedge clk) / always @*;
//   begin/end, if/else-if/else (single statement or block), case/endcase
//   with integer labels; blocking (=) and non-blocking (<=) assignments;
//   expressions: identifiers, integer literals (plain and sized like
//   16'd0 / 1'b0), parentheses, unary !, binary + - * / == < && || |,
//   ternary ?:, concatenation {a, b} and replication {N{expr}}.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace mshls {

class VerilogSimulator {
 public:
  /// Parses `source`, elaborates `top` with the given WIDTH parameter
  /// value (0 = use the module's default). Reports syntax/name errors
  /// with line numbers.
  [[nodiscard]] static StatusOr<VerilogSimulator> Elaborate(
      std::string_view source, const std::string& top, int width = 0);

  VerilogSimulator(VerilogSimulator&&) noexcept;
  VerilogSimulator& operator=(VerilogSimulator&&) noexcept;
  ~VerilogSimulator();

  /// Drives a top-level input port; takes effect at the next Settle/Step.
  [[nodiscard]] Status Poke(const std::string& port, std::uint64_t value);

  /// Reads any elaborated signal by hierarchical name (top-level ports
  /// use their bare name; inner signals "instance.signal").
  [[nodiscard]] StatusOr<std::uint64_t> Peek(const std::string& name) const;

  /// Settles combinational logic to a fixed point (kInternal on a
  /// combinational loop).
  [[nodiscard]] Status Settle();

  /// One full clock cycle: settle, rising edge (non-blocking commits),
  /// settle.
  [[nodiscard]] Status Step();

  /// Number of elaborated signals (diagnostics).
  [[nodiscard]] std::size_t signal_count() const;

 private:
  struct Impl;
  explicit VerilogSimulator(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace mshls
