# Empty compiler generated dependencies file for modulo_map_test.
# This may be replaced when dependencies are built.
