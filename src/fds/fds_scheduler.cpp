#include "fds/fds_scheduler.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace mshls {
namespace {

BlockSchedule ExtractSchedule(const TimeFrameSet& frames) {
  BlockSchedule schedule(frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const TimeFrame& f = frames.frames()[i];
    assert(f.fixed());
    schedule.set_start(OpId{static_cast<int>(i)}, f.asap);
  }
  return schedule;
}

}  // namespace

double EvaluateLocalNarrowForce(const Block& block, const ResourceLibrary& lib,
                                const TimeFrameSet& frames,
                                const std::vector<Profile>& profiles, OpId op,
                                TimeFrame target, const FdsParams& params,
                                FdsScratch& sc) {
  const DelayFn delay = [&](OpId o) {
    return lib.type(block.graph.op(o).type).delay;
  };
  // Apply `target` to a reused copy of `frames`. Narrowing to any sub-frame
  // of a propagated frame set is always feasible, so a failure here
  // indicates a bug, not an input problem.
  sc.next = frames;
  {
    const Status s = sc.next.Narrow(block.graph, delay, op, target);
    assert(s.ok() && "narrowing inside a propagated frame must stay feasible");
    (void)s;
  }

  // Collect per-type displacement from every op whose frame changed
  // (the op itself plus transitively constrained predecessors/successors).
  sc.dq.resize(lib.size());
  if (sc.touched.size() != lib.size()) sc.touched.assign(lib.size(), 0);
  for (int k : sc.touched_list) {
    sc.dq[static_cast<std::size_t>(k)].clear();
    sc.touched[static_cast<std::size_t>(k)] = 0;
  }
  sc.touched_list.clear();
  for (const Operation& o : block.graph.ops()) {
    const TimeFrame& before = frames.frame(o.id);
    const TimeFrame& after = sc.next.frame(o.id);
    if (before == after) continue;
    const std::size_t k = o.type.index();
    auto& d = sc.dq[k];
    if (d.empty()) d.assign(static_cast<std::size_t>(block.time_range), 0.0);
    const int dii = lib.type(o.type).dii;
    AddOccupancyProbability(d, before, dii, -1.0);
    AddOccupancyProbability(d, after, dii, +1.0);
    if (!sc.touched[k]) {
      sc.touched[k] = 1;
      sc.touched_list.push_back(static_cast<int>(k));
    }
  }

  double force = 0;
  for (const ResourceType& t : lib.types()) {
    if (!sc.touched[t.id.index()]) continue;
    force += SpringForce(profiles[t.id.index()], sc.dq[t.id.index()], params,
                         TypeWeight(lib, t.id, params));
  }
  return force;
}

double EvaluateLocalNarrowForce(const Block& block, const ResourceLibrary& lib,
                                const TimeFrameSet& frames,
                                const std::vector<Profile>& profiles, OpId op,
                                TimeFrame target, const FdsParams& params) {
  FdsScratch scratch;
  return EvaluateLocalNarrowForce(block, lib, frames, profiles, op, target,
                                  params, scratch);
}

void RefreshChangedTypeProfiles(const Block& block, const ResourceLibrary& lib,
                                const TimeFrameSet& before,
                                const TimeFrameSet& after,
                                std::vector<Profile>& profiles) {
  std::vector<char> changed(lib.size(), 0);
  for (const Operation& o : block.graph.ops())
    if (before.frame(o.id) != after.frame(o.id)) changed[o.type.index()] = 1;
  for (const ResourceType& t : lib.types())
    if (changed[t.id.index()])
      profiles[t.id.index()] = BuildTypeProfile(block, lib, after, t.id);
}

std::vector<int> UsageOf(const Block& block, const ResourceLibrary& lib,
                         const BlockSchedule& schedule) {
  // One pass over the ops accumulating every type's occupancy profile at
  // once (the former per-type OccupancyProfile calls rescanned all ops once
  // per library entry).
  std::vector<std::vector<int>> profiles(lib.size());
  for (const Operation& op : block.graph.ops()) {
    auto& p = profiles[op.type.index()];
    if (p.empty()) p.assign(static_cast<std::size_t>(block.time_range), 0);
    const int s = schedule.start(op.id);
    if (s < 0) continue;
    const int dii = lib.type(op.type).dii;
    for (int t = s; t < s + dii && t < block.time_range; ++t)
      ++p[static_cast<std::size_t>(t)];
  }
  std::vector<int> usage(lib.size(), 0);
  for (std::size_t k = 0; k < profiles.size(); ++k)
    for (int v : profiles[k]) usage[k] = std::max(usage[k], v);
  return usage;
}

StatusOr<FdsResult> ScheduleBlockFds(const Block& block,
                                     const ResourceLibrary& lib,
                                     const FdsParams& params) {
  const DelayFn delay = [&](OpId o) {
    return lib.type(block.graph.op(o).type).delay;
  };
  auto frames_or = TimeFrameSet::Compute(block.graph, delay, block.time_range);
  if (!frames_or.ok()) return frames_or.status();
  TimeFrameSet frames = std::move(frames_or).value();

  // Profiles are maintained incrementally: after each narrow only the types
  // whose ops moved are rebuilt (bit-identical to the former per-iteration
  // BuildAllProfiles).
  std::vector<Profile> profiles = BuildAllProfiles(block, lib, frames);
  FdsScratch scratch;
  TimeFrameSet prev;
  int iterations = 0;
  while (!frames.AllFixed()) {
    double best_force = std::numeric_limits<double>::infinity();
    OpId best_op = OpId::invalid();
    int best_step = -1;
    for (const Operation& op : block.graph.ops()) {
      const TimeFrame& f = frames.frame(op.id);
      if (f.fixed()) continue;
      for (int t = f.asap; t <= f.alap; ++t) {
        const double force =
            EvaluateLocalNarrowForce(block, lib, frames, profiles, op.id,
                                     TimeFrame{t, t}, params, scratch);
        if (force < best_force) {
          best_force = force;
          best_op = op.id;
          best_step = t;
        }
      }
    }
    assert(best_op.valid());
    prev = frames;
    if (Status s = frames.Narrow(block.graph, delay, best_op,
                                 TimeFrame{best_step, best_step});
        !s.ok())
      return s;
    RefreshChangedTypeProfiles(block, lib, prev, frames, profiles);
    ++iterations;
  }

  FdsResult result;
  result.schedule = ExtractSchedule(frames);
  result.usage = UsageOf(block, lib, result.schedule);
  result.iterations = iterations;
  return result;
}

StatusOr<FdsResult> ScheduleBlockIfds(const Block& block,
                                      const ResourceLibrary& lib,
                                      const FdsParams& params,
                                      const IterationObserver& observer) {
  const DelayFn delay = [&](OpId o) {
    return lib.type(block.graph.op(o).type).delay;
  };
  auto frames_or = TimeFrameSet::Compute(block.graph, delay, block.time_range);
  if (!frames_or.ok()) return frames_or.status();
  TimeFrameSet frames = std::move(frames_or).value();

  std::vector<Profile> profiles = BuildAllProfiles(block, lib, frames);
  FdsScratch scratch;
  TimeFrameSet prev;
  int iterations = 0;
  while (!frames.AllFixed()) {
    IterationTrace trace;
    trace.iteration = iterations;
    double best_diff = -1.0;
    for (const Operation& op : block.graph.ops()) {
      const TimeFrame& f = frames.frame(op.id);
      if (f.fixed()) continue;
      CandidateEval eval;
      eval.op = op.id;
      eval.frame = f;
      eval.force_begin =
          EvaluateLocalNarrowForce(block, lib, frames, profiles, op.id,
                                   TimeFrame{f.asap, f.asap}, params, scratch);
      eval.force_end =
          EvaluateLocalNarrowForce(block, lib, frames, profiles, op.id,
                                   TimeFrame{f.alap, f.alap}, params, scratch);
      eval.diff = std::abs(eval.force_begin - eval.force_end);
      if (f.width() > 2) eval.diff *= params.mid_estimate;
      trace.candidates.push_back(eval);
      if (eval.diff > best_diff) {
        best_diff = eval.diff;
        trace.chosen = op.id;
        trace.shrank_begin = eval.force_begin > eval.force_end;
      }
    }
    assert(trace.chosen.valid());
    const TimeFrame f = frames.frame(trace.chosen);
    const TimeFrame next = trace.shrank_begin
                               ? TimeFrame{f.asap + 1, f.alap}
                               : TimeFrame{f.asap, f.alap - 1};
    if (observer) observer(trace);
    prev = frames;
    if (Status s = frames.Narrow(block.graph, delay, trace.chosen, next);
        !s.ok())
      return s;
    RefreshChangedTypeProfiles(block, lib, prev, frames, profiles);
    ++iterations;
  }

  FdsResult result;
  result.schedule = ExtractSchedule(frames);
  result.usage = UsageOf(block, lib, result.schedule);
  result.iterations = iterations;
  return result;
}

}  // namespace mshls
