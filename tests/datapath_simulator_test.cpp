// End-to-end hardware-model tests: scheduler + binding + registers +
// residue-counter mux logic must together preserve every process'
// computation under arbitrary grid-aligned interleavings.
#include <gtest/gtest.h>

#include "bind/binding.h"
#include "modulo/coupled_scheduler.h"
#include "sim/datapath_simulator.h"
#include "sim/simulator.h"
#include "workloads/benchmarks.h"
#include "workloads/paper_system.h"

namespace mshls {
namespace {

class DatapathTest : public ::testing::Test {
 protected:
  struct Prepared {
    CoupledResult result;
    SystemBinding binding;
  };

  Prepared Prepare(SystemModel& model) {
    EXPECT_TRUE(model.Validate().ok());
    CoupledScheduler scheduler(model, CoupledParams{});
    auto result = scheduler.Run();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    auto binding = BindSystem(model, result.value().schedule,
                              result.value().allocation);
    EXPECT_TRUE(binding.ok()) << binding.status().ToString();
    return {std::move(result).value(), std::move(binding).value()};
  }

  SystemModel TwoSharingProcesses(PaperTypes* out_types) {
    SystemModel model;
    const PaperTypes t = AddPaperTypes(model.library());
    std::vector<ProcessId> procs;
    for (int i = 0; i < 2; ++i) {
      DataFlowGraph g;
      const OpId m1 = g.AddOp(t.mult, "m1");
      const OpId m2 = g.AddOp(t.mult, "m2");
      const OpId a1 = g.AddOp(t.add, "a1");
      g.AddEdge(m1, a1);
      g.AddEdge(m2, a1);
      EXPECT_TRUE(g.Validate().ok());
      const ProcessId p = model.AddProcess("p" + std::to_string(i), 8);
      model.AddBlock(p, "b", std::move(g), 8);
      procs.push_back(p);
    }
    model.MakeGlobal(t.mult, procs);
    model.SetPeriod(t.mult, 4);
    *out_types = t;
    return model;
  }
};

TEST_F(DatapathTest, SingleActivationComputesCorrectly) {
  PaperTypes t;
  SystemModel model = TwoSharingProcesses(&t);
  Prepared prep = Prepare(model);
  DatapathSimulator sim(model, prep.result.schedule, prep.result.allocation,
                        prep.binding);
  const DatapathReport report = sim.Run({{BlockId{0}, 0}});
  EXPECT_TRUE(report.ok) << report.mismatch;
  EXPECT_EQ(report.activations_checked, 1);
  EXPECT_GT(report.shared_issues, 0);
}

TEST_F(DatapathTest, ConcurrentProcessesDoNotCorruptEachOther) {
  PaperTypes t;
  SystemModel model = TwoSharingProcesses(&t);
  Prepared prep = Prepare(model);
  DatapathSimulator sim(model, prep.result.schedule, prep.result.allocation,
                        prep.binding);
  // Both processes fully overlapped, plus staggered repeats on the grid.
  const DatapathReport report = sim.Run({
      {BlockId{0}, 0},
      {BlockId{1}, 0},
      {BlockId{0}, 8},
      {BlockId{1}, 12},
      {BlockId{0}, 16},
      {BlockId{1}, 20},
  });
  EXPECT_TRUE(report.ok) << report.mismatch;
  EXPECT_EQ(report.activations_checked, 6);
}

TEST_F(DatapathTest, PaperSystemStormComputesCorrectly) {
  PaperSystem sys = BuildPaperSystem();
  Prepared prep = Prepare(sys.model);
  DatapathSimulator sim(sys.model, prep.result.schedule,
                        prep.result.allocation, prep.binding);
  TraceOptions trace_options;
  trace_options.seed = 7;
  trace_options.activations_per_process = 4;
  const auto occupancy_trace =
      RandomActivationTrace(sys.model, trace_options);
  std::vector<DatapathActivation> trace;
  for (const Activation& a : occupancy_trace)
    trace.push_back({a.block, a.start});
  const DatapathReport report = sim.Run(trace);
  EXPECT_TRUE(report.ok) << report.mismatch;
  EXPECT_EQ(report.activations_checked,
            static_cast<long>(trace.size()));
  EXPECT_GT(report.shared_issues, 0);
}

TEST_F(DatapathTest, ForgedAuthorizationCaughtAsMuxConflict) {
  PaperTypes t;
  SystemModel model = TwoSharingProcesses(&t);
  Prepared prep = Prepare(model);
  // Swap the two users' authorization rows: the binding now uses pool
  // instances at residues the counter assigns to the other process.
  Allocation forged = prep.result.allocation;
  ASSERT_EQ(forged.global.size(), 1u);
  ASSERT_EQ(forged.global[0].authorization.size(), 2u);
  std::swap(forged.global[0].authorization[0],
            forged.global[0].authorization[1]);
  DatapathSimulator sim(model, prep.result.schedule, forged, prep.binding);
  const DatapathReport report = sim.Run({{BlockId{0}, 0}, {BlockId{1}, 0}});
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.mismatch.find("mux conflict"), std::string::npos);
}

TEST_F(DatapathTest, OffGridActivationCorruptsOrConflicts) {
  // Negative control at the value level: starting one process off the
  // grid must surface as a hardware conflict or a mux violation — the
  // datapath equivalent of the occupancy simulator's authorization check.
  PaperTypes t;
  SystemModel model = TwoSharingProcesses(&t);
  Prepared prep = Prepare(model);
  DatapathSimulator sim(model, prep.result.schedule, prep.result.allocation,
                        prep.binding);
  bool any_failure = false;
  for (int offset = 1; offset < 4; ++offset) {
    const DatapathReport report =
        sim.Run({{BlockId{0}, 0}, {BlockId{1}, offset}});
    any_failure |= !report.ok;
  }
  EXPECT_TRUE(any_failure);
}

TEST_F(DatapathTest, DifferentSeedsProduceDifferentButCorrectValues) {
  PaperTypes t;
  SystemModel model = TwoSharingProcesses(&t);
  Prepared prep = Prepare(model);
  DatapathSimulator sim(model, prep.result.schedule, prep.result.allocation,
                        prep.binding);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    DatapathOptions options;
    options.input_seed = seed;
    const DatapathReport report =
        sim.Run({{BlockId{0}, 0}, {BlockId{1}, 4}}, options);
    EXPECT_TRUE(report.ok) << "seed " << seed << ": " << report.mismatch;
  }
}

TEST_F(DatapathTest, BackToBackLoopIterationsStayIndependent) {
  // The unbound-loop scenario at value level: 20 consecutive iterations,
  // each with distinct inputs; register tags must isolate them.
  PaperTypes t;
  SystemModel model = TwoSharingProcesses(&t);
  Prepared prep = Prepare(model);
  DatapathSimulator sim(model, prep.result.schedule, prep.result.allocation,
                        prep.binding);
  std::vector<DatapathActivation> trace;
  for (int i = 0; i < 20; ++i)
    trace.push_back({BlockId{0}, static_cast<std::int64_t>(8) * i});
  const DatapathReport report = sim.Run(trace);
  EXPECT_TRUE(report.ok) << report.mismatch;
  EXPECT_EQ(report.activations_checked, 20);
}

}  // namespace
}  // namespace mshls
