#include "modulo/repair.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <utility>

#include "bind/binding.h"
#include "common/hashing.h"
#include "engine/degradation.h"
#include "frontend/emitter.h"
#include "frontend/lowering.h"
#include "modulo/period_search.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mshls {
namespace {

int FindSpecType(const ModelSpec& spec, const std::string& name) {
  for (std::size_t i = 0; i < spec.types.size(); ++i)
    if (spec.types[i].name == name) return static_cast<int>(i);
  return -1;
}

int FindSpecProcess(const ModelSpec& spec, const std::string& name) {
  for (std::size_t i = 0; i < spec.processes.size(); ++i)
    if (spec.processes[i].name == name) return static_cast<int>(i);
  return -1;
}

Status UnknownType(const std::string& name) {
  return Status{StatusCode::kNotFound,
                "delta references unknown resource type '" + name + "'"};
}

Status UnknownProcess(const std::string& name) {
  return Status{StatusCode::kNotFound,
                "delta references unknown process '" + name + "'"};
}

/// The base model's resource declarations as .hls text — the preamble an
/// add-process body is compiled against.
std::string RenderResourceDecls(const SystemModel& base) {
  std::string out;
  for (const ResourceType& t : base.library().types()) {
    out += "resource " + t.name + " delay " + std::to_string(t.delay);
    if (t.dii != 1) out += " dii " + std::to_string(t.dii);
    out += " area " + std::to_string(t.area) + ";\n";
  }
  return out;
}

/// Minimal token scanner for the sidecar format: words are identifier or
/// number runs, punctuation (`,;{}`) is returned one char at a time, `#`
/// comments run to end of line.
class DeltaLexer {
 public:
  explicit DeltaLexer(std::string_view text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else {
        break;
      }
    }
  }

  [[nodiscard]] bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  /// Next word (empty at end). Punctuation comes back as a 1-char string.
  std::string Word() {
    SkipWs();
    if (pos_ >= text_.size()) return "";
    const char c = text_[pos_];
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' &&
        c != '-')
      return std::string(1, text_[pos_++]);
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char w = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(w)) != 0 || w == '_' ||
          w == '-')
        ++pos_;
      else
        break;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  [[nodiscard]] bool Eat(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t pos() const { return pos_; }
  void set_pos(std::size_t pos) { pos_ = pos; }
  [[nodiscard]] std::string_view text() const { return text_; }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

Status ParseError(const std::string& what) {
  return Status{StatusCode::kParseError, "delta parse: " + what};
}

StatusOr<int> ParseInt(const std::string& word, const char* what) {
  if (word.empty()) return ParseError(std::string("expected ") + what);
  for (const char c : word)
    if (std::isdigit(static_cast<unsigned char>(c)) == 0)
      return ParseError(std::string("bad ") + what + " '" + word + "'");
  return std::stoi(word);
}

/// Compiles one `process ... { ... }` body against the base library and
/// returns it as a SpecProcess with type indices in base library order.
StatusOr<SpecProcess> CompileAddedProcess(std::string_view body,
                                          const SystemModel& base) {
  const std::string source =
      RenderResourceDecls(base) + "\n" + std::string(body) + "\n";
  auto model_or = CompileSystem(source);
  if (!model_or.ok())
    return Status{model_or.status().code(),
                  "delta add process: " + model_or.status().message()};
  const SystemModel& mini = model_or.value();
  if (mini.library().size() != base.library().size())
    return ParseError("add process body declares resources of its own");
  const ModelSpec spec = ExtractSpec(mini);
  if (spec.processes.size() != 1)
    return ParseError("add process body must define exactly one process");
  return spec.processes.front();
}

/// True when the named post-delta process has the same block structure as
/// its base namesake — the precondition for pinning its old starts.
bool SameBlockShape(const SystemModel& base, const Process& base_p,
                    const SystemModel& post, const Process& post_p) {
  if (base_p.blocks.size() != post_p.blocks.size()) return false;
  for (std::size_t i = 0; i < base_p.blocks.size(); ++i) {
    const Block& bb = base.block(base_p.blocks[i]);
    const Block& pb = post.block(post_p.blocks[i]);
    if (bb.name != pb.name || bb.time_range != pb.time_range ||
        bb.phase != pb.phase ||
        bb.graph.op_count() != pb.graph.op_count())
      return false;
  }
  return true;
}

/// Transitive closure of `freed` over the post model's global sharing
/// groups: a pinned group-mate may hold exactly the residues the freed
/// slice needs, so widening frees the whole connected component.
std::set<std::string> WidenScope(const SystemModel& post,
                                 std::set<std::string> freed) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (ResourceTypeId g : post.GlobalTypes()) {
      const TypeAssignment& a = post.assignment(g);
      bool touched = false;
      for (ProcessId p : a.group)
        if (freed.count(post.process(p).name) > 0) {
          touched = true;
          break;
        }
      if (!touched) continue;
      for (ProcessId p : a.group)
        if (freed.insert(post.process(p).name).second) changed = true;
    }
  }
  return freed;
}

void CountMetric(const char* name) {
  if (!obs::Enabled()) return;
  obs::MetricsRegistry::Global()
      .GetCounter(name, obs::MetricKind::kStable)
      .Add();
}

/// Bind + certify gate shared by every rung: the repaired schedule is
/// checked exactly as hard as a fresh job's (engine/job.cpp stage 4).
Status GateAttempt(SystemModel model, CoupledResult result,
                   const RepairOptions& options, RepairResult& out) {
  auto binding = BindSystem(model, result.schedule, result.allocation);
  if (!binding.ok()) return binding.status();
  CertificateReport cert =
      CertifySchedule(model, result.schedule, result.allocation,
                      &binding.value(), options.certifier);
  if (!cert.ok())
    return Status{StatusCode::kInternal, "certificate: " + cert.Summary()};
  out.result = std::move(result);
  out.certificate = std::move(cert);
  out.model = std::make_shared<const SystemModel>(std::move(model));
  return Status::Ok();
}

}  // namespace

const char* DeltaKindName(DeltaKind kind) {
  switch (kind) {
    case DeltaKind::kAddProcess: return "add-process";
    case DeltaKind::kRemoveProcess: return "remove-process";
    case DeltaKind::kRetimeType: return "retime";
    case DeltaKind::kSetPeriod: return "period";
    case DeltaKind::kSetDeadline: return "deadline";
    case DeltaKind::kResizeGroup: return "group";
  }
  return "unknown";
}

const char* RepairRungName(RepairRung rung) {
  switch (rung) {
    case RepairRung::kInPlace: return "in-place";
    case RepairRung::kWidenScope: return "widen-scope";
    case RepairRung::kRelaxPeriods: return "relax-periods";
    case RepairRung::kFullResolve: return "full-resolve";
  }
  return "unknown";
}

std::vector<RepairRung> DefaultRepairLadder() {
  return {RepairRung::kInPlace, RepairRung::kWidenScope,
          RepairRung::kRelaxPeriods, RepairRung::kFullResolve};
}

std::string ModelDelta::Summary() const {
  std::string out;
  for (const DeltaOp& op : ops) {
    if (!out.empty()) out += ", ";
    out += DeltaKindName(op.kind);
    switch (op.kind) {
      case DeltaKind::kAddProcess: out += " " + op.added.name; break;
      case DeltaKind::kRemoveProcess:
      case DeltaKind::kSetDeadline: out += " " + op.process; break;
      case DeltaKind::kRetimeType:
      case DeltaKind::kSetPeriod:
      case DeltaKind::kResizeGroup: out += " " + op.type; break;
    }
  }
  return out.empty() ? "(empty)" : out;
}

std::uint64_t DeltaFingerprint(const ModelDelta& delta) {
  StableHasher h;
  h.Mix(std::uint64_t{delta.ops.size()});
  for (const DeltaOp& op : delta.ops) {
    h.Mix(static_cast<int>(op.kind));
    h.Mix(std::string_view(op.process));
    h.Mix(std::string_view(op.type));
    h.Mix(op.delay);
    h.Mix(op.dii);
    h.Mix(op.period);
    h.Mix(op.deadline);
    h.Mix(op.time_range);
    h.Mix(std::uint64_t{op.group.size()});
    for (const std::string& g : op.group) h.Mix(std::string_view(g));
    h.Mix(std::string_view(op.added.name));
    h.Mix(op.added.deadline);
    h.Mix(std::uint64_t{op.added.blocks.size()});
    for (const SpecBlock& b : op.added.blocks) {
      h.Mix(std::string_view(b.name));
      h.Mix(b.time_range);
      h.Mix(b.phase);
      h.Mix(std::uint64_t{b.ops.size()});
      for (const SpecOp& o : b.ops) {
        h.Mix(o.type);
        h.Mix(std::string_view(o.name));
      }
      h.Mix(std::uint64_t{b.edges.size()});
      for (const SpecEdge& e : b.edges) {
        h.Mix(e.from);
        h.Mix(e.to);
      }
    }
  }
  return h.Digest();
}

StatusOr<SystemModel> ApplyDelta(const SystemModel& base,
                                 const ModelDelta& delta) {
  ModelSpec spec = ExtractSpec(base);
  for (const DeltaOp& op : delta.ops) {
    switch (op.kind) {
      case DeltaKind::kAddProcess: {
        if (op.added.name.empty() || op.added.blocks.empty())
          return Status{StatusCode::kInvalidArgument,
                        "delta adds an empty process"};
        if (FindSpecProcess(spec, op.added.name) >= 0)
          return Status{StatusCode::kInvalidArgument,
                        "delta adds process '" + op.added.name +
                            "' which already exists"};
        for (const SpecBlock& b : op.added.blocks)
          for (const SpecOp& o : b.ops)
            if (o.type < 0 || o.type >= static_cast<int>(spec.types.size()))
              return Status{StatusCode::kInvalidArgument,
                            "added process '" + op.added.name +
                                "' references a type outside the base "
                                "library"};
        spec.processes.push_back(op.added);
        break;
      }
      case DeltaKind::kRemoveProcess: {
        const int pi = FindSpecProcess(spec, op.process);
        if (pi < 0) return UnknownProcess(op.process);
        spec.processes.erase(spec.processes.begin() + pi);
        // Shares shed the removed member; a share emptied by the removal
        // disappears entirely — the type falls back to local assignment.
        for (auto it = spec.shares.begin(); it != spec.shares.end();) {
          std::vector<int>& members = it->processes;
          members.erase(std::remove(members.begin(), members.end(), pi),
                        members.end());
          for (int& idx : members)
            if (idx > pi) --idx;
          if (members.empty())
            it = spec.shares.erase(it);
          else
            ++it;
        }
        break;
      }
      case DeltaKind::kRetimeType: {
        const int ti = FindSpecType(spec, op.type);
        if (ti < 0) return UnknownType(op.type);
        if (op.delay == -1 && op.dii == -1)
          return Status{StatusCode::kInvalidArgument,
                        "retime of '" + op.type + "' changes nothing"};
        if (op.delay != -1) {
          if (op.delay < 1)
            return Status{StatusCode::kInvalidArgument,
                          "retime delay must be >= 1"};
          spec.types[static_cast<std::size_t>(ti)].delay = op.delay;
        }
        if (op.dii != -1) {
          if (op.dii < 1)
            return Status{StatusCode::kInvalidArgument,
                          "retime dii must be >= 1"};
          spec.types[static_cast<std::size_t>(ti)].dii = op.dii;
        }
        break;
      }
      case DeltaKind::kSetPeriod: {
        const int ti = FindSpecType(spec, op.type);
        if (ti < 0) return UnknownType(op.type);
        if (op.period < 1)
          return Status{StatusCode::kInvalidArgument,
                        "period must be >= 1"};
        bool found = false;
        for (SpecShare& s : spec.shares)
          if (s.type == ti) {
            s.period = op.period;
            found = true;
          }
        if (!found)
          return Status{StatusCode::kFailedPrecondition,
                        "type '" + op.type +
                            "' is not globally shared; resize its group "
                            "first"};
        break;
      }
      case DeltaKind::kSetDeadline: {
        const int pi = FindSpecProcess(spec, op.process);
        if (pi < 0) return UnknownProcess(op.process);
        SpecProcess& p = spec.processes[static_cast<std::size_t>(pi)];
        if (op.deadline >= 0) p.deadline = op.deadline;
        if (op.time_range > 0)
          for (SpecBlock& b : p.blocks) b.time_range = op.time_range;
        break;
      }
      case DeltaKind::kResizeGroup: {
        const int ti = FindSpecType(spec, op.type);
        if (ti < 0) return UnknownType(op.type);
        auto share = spec.shares.end();
        for (auto it = spec.shares.begin(); it != spec.shares.end(); ++it)
          if (it->type == ti) share = it;
        if (op.group.empty()) {
          // Emptying the group demotes the type to local assignment.
          if (share != spec.shares.end()) spec.shares.erase(share);
          break;
        }
        std::vector<int> members;
        for (const std::string& name : op.group) {
          const int mi = FindSpecProcess(spec, name);
          if (mi < 0) return UnknownProcess(name);
          if (std::find(members.begin(), members.end(), mi) == members.end())
            members.push_back(mi);
        }
        if (share == spec.shares.end()) {
          // Promoting a local type: period defaults to 1 (always eq.-3
          // compatible); compose with a `period` directive to choose one.
          SpecShare fresh;
          fresh.type = ti;
          fresh.period = 1;
          fresh.processes = std::move(members);
          spec.shares.push_back(std::move(fresh));
        } else {
          share->processes = std::move(members);
        }
        break;
      }
    }
  }
  return BuildModel(spec);
}

std::vector<std::string> PerturbedProcesses(const SystemModel& base,
                                            const ModelDelta& delta) {
  std::set<std::string> names;
  std::set<std::string> removed;
  const auto base_type = [&](const std::string& name) -> ResourceTypeId {
    for (const ResourceType& t : base.library().types())
      if (t.name == name) return t.id;
    return ResourceTypeId{};
  };
  for (const DeltaOp& op : delta.ops) {
    switch (op.kind) {
      case DeltaKind::kAddProcess:
        names.insert(op.added.name);
        break;
      case DeltaKind::kRemoveProcess:
        removed.insert(op.process);
        break;
      case DeltaKind::kRetimeType: {
        const ResourceTypeId t = base_type(op.type);
        if (!t.valid()) break;
        for (const Process& p : base.processes())
          if (base.ProcessUsesType(p.id, t)) names.insert(p.name);
        break;
      }
      case DeltaKind::kSetPeriod: {
        const ResourceTypeId t = base_type(op.type);
        if (!t.valid()) break;
        for (ProcessId p : base.GlobalUsers(t)) names.insert(base.process(p).name);
        break;
      }
      case DeltaKind::kSetDeadline:
        names.insert(op.process);
        break;
      case DeltaKind::kResizeGroup: {
        const ResourceTypeId t = base_type(op.type);
        if (t.valid() && base.is_global(t))
          for (ProcessId p : base.assignment(t).group)
            names.insert(base.process(p).name);
        for (const std::string& member : op.group) names.insert(member);
        break;
      }
    }
  }
  for (const std::string& gone : removed) names.erase(gone);
  return {names.begin(), names.end()};
}

StatusOr<ModelDelta> ParseDelta(std::string_view text,
                                const SystemModel& base) {
  ModelDelta delta;
  DeltaLexer lex(text);
  std::set<std::string> known_processes;
  for (const Process& p : base.processes()) known_processes.insert(p.name);
  std::set<std::string> known_types;
  for (const ResourceType& t : base.library().types())
    known_types.insert(t.name);

  const auto require_process = [&](const std::string& name) -> Status {
    if (known_processes.count(name) == 0) return UnknownProcess(name);
    return Status::Ok();
  };
  const auto require_type = [&](const std::string& name) -> Status {
    if (known_types.count(name) == 0) return UnknownType(name);
    return Status::Ok();
  };

  while (!lex.AtEnd()) {
    const std::string head = lex.Word();
    DeltaOp op;
    if (head == "remove") {
      if (lex.Word() != "process")
        return ParseError("expected 'remove process <name>;'");
      op.kind = DeltaKind::kRemoveProcess;
      op.process = lex.Word();
      if (Status s = require_process(op.process); !s.ok()) return s;
      known_processes.erase(op.process);
      if (!lex.Eat(';')) return ParseError("missing ';' after remove");
    } else if (head == "add") {
      if (lex.Word() != "process")
        return ParseError("expected 'add process <name> ... { ... }'");
      // Capture the whole .hls process declaration (through the matching
      // closing brace) and hand it to the frontend.
      std::size_t depth = 0;
      const std::string_view all = lex.text();
      std::size_t start = lex.pos();
      while (start > 0 && all.compare(start, 7, "process") != 0) --start;
      std::size_t cursor = lex.pos();
      std::size_t end = std::string_view::npos;
      for (; cursor < all.size(); ++cursor) {
        if (all[cursor] == '{') ++depth;
        if (all[cursor] == '}') {
          if (depth == 0) return ParseError("unbalanced '}' in add process");
          if (--depth == 0) {
            end = cursor + 1;
            break;
          }
        }
      }
      if (end == std::string_view::npos)
        return ParseError("unterminated add process body");
      lex.set_pos(end);
      (void)lex.Eat(';');
      auto added_or = CompileAddedProcess(all.substr(start, end - start), base);
      if (!added_or.ok()) return added_or.status();
      op.kind = DeltaKind::kAddProcess;
      op.added = std::move(added_or).value();
      if (known_processes.count(op.added.name) > 0)
        return ParseError("add process '" + op.added.name +
                          "' collides with an existing process");
      known_processes.insert(op.added.name);
    } else if (head == "retime") {
      op.kind = DeltaKind::kRetimeType;
      op.type = lex.Word();
      if (Status s = require_type(op.type); !s.ok()) return s;
      bool saw = false;
      for (;;) {
        if (lex.Eat(';')) break;
        const std::string field = lex.Word();
        if (field == "delay") {
          auto v = ParseInt(lex.Word(), "delay");
          if (!v.ok()) return v.status();
          op.delay = v.value();
          saw = true;
        } else if (field == "dii") {
          auto v = ParseInt(lex.Word(), "dii");
          if (!v.ok()) return v.status();
          op.dii = v.value();
          saw = true;
        } else {
          return ParseError("expected 'delay <d>' or 'dii <k>' in retime, "
                            "got '" + field + "'");
        }
      }
      if (!saw) return ParseError("retime needs 'delay' and/or 'dii'");
    } else if (head == "period") {
      op.kind = DeltaKind::kSetPeriod;
      op.type = lex.Word();
      if (Status s = require_type(op.type); !s.ok()) return s;
      auto v = ParseInt(lex.Word(), "period");
      if (!v.ok()) return v.status();
      op.period = v.value();
      if (!lex.Eat(';')) return ParseError("missing ';' after period");
    } else if (head == "deadline") {
      op.kind = DeltaKind::kSetDeadline;
      op.process = lex.Word();
      if (Status s = require_process(op.process); !s.ok()) return s;
      auto v = ParseInt(lex.Word(), "deadline");
      if (!v.ok()) return v.status();
      op.deadline = v.value();
      if (!lex.Eat(';')) {
        if (lex.Word() != "time")
          return ParseError("expected 'time <t>' or ';' after deadline");
        auto t = ParseInt(lex.Word(), "time range");
        if (!t.ok()) return t.status();
        op.time_range = t.value();
        if (!lex.Eat(';')) return ParseError("missing ';' after deadline");
      }
    } else if (head == "group") {
      op.kind = DeltaKind::kResizeGroup;
      op.type = lex.Word();
      if (Status s = require_type(op.type); !s.ok()) return s;
      while (!lex.Eat(';')) {
        const std::string member = lex.Word();
        if (member.empty()) return ParseError("missing ';' after group");
        if (member == ",") continue;
        if (Status s = require_process(member); !s.ok()) return s;
        op.group.push_back(member);
      }
    } else {
      return ParseError("unknown directive '" + head + "'");
    }
    delta.ops.push_back(std::move(op));
  }
  if (delta.ops.empty()) return ParseError("delta is empty");
  return delta;
}

std::string RenderDelta(const ModelDelta& delta, const SystemModel& base) {
  std::string out = "# mshls delta sidecar (apply with: mshlsc <base.hls> "
                    "--repair <this file>)\n";
  for (const DeltaOp& op : delta.ops) {
    switch (op.kind) {
      case DeltaKind::kAddProcess: {
        // Re-render the process body through the emitter: build a throwaway
        // model holding just this process over the base library.
        ModelSpec mini;
        mini.types = ExtractSpec(base).types;
        mini.processes.push_back(op.added);
        auto model_or = BuildModel(mini);
        if (!model_or.ok()) {
          out += "# add process " + op.added.name + ": unrenderable (" +
                 model_or.status().message() + ")\n";
          break;
        }
        const std::string text = EmitSystemText(model_or.value());
        const std::size_t at = text.find("process ");
        out += "add " +
               (at == std::string::npos ? text : text.substr(at));
        if (out.back() != '\n') out += "\n";
        break;
      }
      case DeltaKind::kRemoveProcess:
        out += "remove process " + op.process + ";\n";
        break;
      case DeltaKind::kRetimeType:
        out += "retime " + op.type;
        if (op.delay != -1) out += " delay " + std::to_string(op.delay);
        if (op.dii != -1) out += " dii " + std::to_string(op.dii);
        out += ";\n";
        break;
      case DeltaKind::kSetPeriod:
        out += "period " + op.type + " " + std::to_string(op.period) + ";\n";
        break;
      case DeltaKind::kSetDeadline:
        out += "deadline " + op.process + " " + std::to_string(op.deadline);
        if (op.time_range > 0)
          out += " time " + std::to_string(op.time_range);
        out += ";\n";
        break;
      case DeltaKind::kResizeGroup: {
        out += "group " + op.type;
        for (std::size_t i = 0; i < op.group.size(); ++i)
          out += (i == 0 ? " " : ", ") + op.group[i];
        out += ";\n";
        break;
      }
    }
  }
  return out;
}

StatusOr<RepairResult> RepairSchedule(const SystemModel& base,
                                      const CoupledResult& old_certified,
                                      const ModelDelta& delta,
                                      const RepairOptions& options) {
  if (delta.empty())
    return Status{StatusCode::kInvalidArgument, "empty delta"};
  if (old_certified.schedule.blocks.size() != base.block_count())
    return Status{StatusCode::kInvalidArgument,
                  "base schedule does not match the base model"};

  auto post_or = ApplyDelta(base, delta);
  if (!post_or.ok()) return post_or.status();
  const SystemModel post = std::move(post_or).value();

  obs::TraceTrack* track = nullptr;
  if (obs::Tracer* tracer = obs::GlobalTracer())
    track = &tracer->NewTrack("repair");
  obs::ScopedSpan repair_span(
      track, "repair", obs::TraceArgs().S("delta", delta.Summary()).Json());

  const std::vector<std::string> perturbed = PerturbedProcesses(base, delta);
  const std::set<std::string> freed(perturbed.begin(), perturbed.end());

  // Pin rows for a given freed set: every post process outside it with an
  // unchanged block shape keeps its base starts; everything else floats.
  const auto build_pins = [&](const std::set<std::string>& free_set,
                              int* pinned_ops, int* freed_ops) {
    std::vector<std::vector<int>> pins(post.block_count());
    *pinned_ops = 0;
    *freed_ops = 0;
    for (const Process& p : post.processes()) {
      const Process* base_p = nullptr;
      for (const Process& candidate : base.processes())
        if (candidate.name == p.name) {
          base_p = &candidate;
          break;
        }
      const bool pin = free_set.count(p.name) == 0 && base_p != nullptr &&
                       SameBlockShape(base, *base_p, post, p);
      for (std::size_t i = 0; i < p.blocks.size(); ++i) {
        const Block& pb = post.block(p.blocks[i]);
        const int ops = static_cast<int>(pb.graph.op_count());
        if (!pin) {
          *freed_ops += ops;
          continue;
        }
        const BlockSchedule& starts =
            old_certified.schedule.of(base_p->blocks[i]);
        std::vector<int>& row = pins[p.blocks[i].index()];
        row.resize(static_cast<std::size_t>(ops), -1);
        for (int o = 0; o < ops; ++o)
          row[static_cast<std::size_t>(o)] =
              starts.start(OpId(static_cast<std::int32_t>(o)));
        *pinned_ops += ops;
      }
    }
    return pins;
  };

  RepairResult out;
  std::vector<RepairRung> ladder = options.ladder;
  if (ladder.empty()) ladder.push_back(RepairRung::kInPlace);

  const std::set<std::string> widened = WidenScope(post, freed);
  Status last{StatusCode::kInternal, "no applicable repair rung"};
  for (const RepairRung rung : ladder) {
    // Rungs that cannot change the outcome are skipped, not recorded.
    if (rung == RepairRung::kWidenScope &&
        (widened.size() == freed.size() ||
         widened.size() == post.process_count()))
      continue;
    if (rung == RepairRung::kRelaxPeriods && post.GlobalTypes().empty())
      continue;

    obs::ScopedSpan attempt_span(
        track, "attempt",
        obs::TraceArgs().S("rung", RepairRungName(rung)).Json());
    Status attempt;
    int pinned_ops = 0;
    int freed_ops = 0;
    switch (rung) {
      case RepairRung::kInPlace:
      case RepairRung::kWidenScope: {
        CoupledParams params = options.params;
        params.pinned_starts = build_pins(
            rung == RepairRung::kInPlace ? freed : widened, &pinned_ops,
            &freed_ops);
        SystemModel model = post;
        bool hit = false;
        bool store_hit = false;
        auto run_or = ScheduleWithCache(model, params, options.cache, &hit,
                                        options.store, &store_hit);
        out.evaluated += 1;
        out.cache_hits += hit ? 1 : 0;
        out.store_hits += store_hit ? 1 : 0;
        attempt = run_or.ok() ? GateAttempt(std::move(model),
                                            std::move(run_or).value(),
                                            options, out)
                              : run_or.status();
        break;
      }
      case RepairRung::kRelaxPeriods: {
        CoupledParams params = options.params;
        params.pinned_starts.clear();
        SystemModel model = post;
        PeriodSearchOptions search_options;
        search_options.jobs = options.jobs;
        search_options.cache = options.cache;
        search_options.store = options.store;
        auto search = SearchPeriods(model, params, search_options);
        if (search.ok()) {
          out.evaluated += search.value().evaluated;
          out.cache_hits += search.value().cache_hits;
          out.store_hits += search.value().store_hits;
          attempt = GateAttempt(std::move(model),
                                std::move(search).value().best, options, out);
        } else {
          attempt = search.status();
        }
        break;
      }
      case RepairRung::kFullResolve: {
        CoupledParams params = options.params;
        params.pinned_starts.clear();
        SystemModel model = post;
        bool hit = false;
        bool store_hit = false;
        auto run_or = ScheduleWithCache(model, params, options.cache, &hit,
                                        options.store, &store_hit);
        out.evaluated += 1;
        out.cache_hits += hit ? 1 : 0;
        out.store_hits += store_hit ? 1 : 0;
        attempt = run_or.ok() ? GateAttempt(std::move(model),
                                            std::move(run_or).value(),
                                            options, out)
                              : run_or.status();
        break;
      }
    }
    out.attempts.push_back(RepairAttempt{rung, attempt});
    if (attempt.ok()) {
      out.rung = rung;
      out.pinned_ops = pinned_ops;
      out.freed_ops = freed_ops;
      CountMetric("repair.completed");
      if (obs::Enabled())
        obs::MetricsRegistry::Global()
            .GetCounter(std::string("repair.rung.") + RepairRungName(rung),
                        obs::MetricKind::kStable)
            .Add();
      if (track != nullptr)
        track->Instant("done", obs::TraceArgs()
                                   .S("rung", RepairRungName(rung))
                                   .I("pinned_ops", pinned_ops)
                                   .I("freed_ops", freed_ops)
                                   .Json());
      return out;
    }
    last = std::move(attempt);
    // Only statuses a weaker formulation can fix keep the ladder going —
    // same contract as the job-level degradation ladder.
    if (!IsDegradable(last.code())) break;
  }
  CountMetric("repair.failed");
  return last;
}

}  // namespace mshls
