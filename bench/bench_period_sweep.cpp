// Experiment A1 — ablation for the period trade-off discussed in §3.2:
// "the impact of a global resource period is always twofold. On the one
// hand higher values allow more processes to share a single resource
// instance, on the other hand the invocation interval of critical loops
// could be enlarged."
//
// Sweeps a common period lambda over the paper system (only eq.-3
// compatible values: divisors of gcd(30, 25, 15) = 5 and, for a second
// scaled variant with equal deadlines, a denser divisor chain) and reports
// instances, area and the activation-grid coarseness that a reactive
// process would pay.
#include <cstdio>

#include "common/text_table.h"
#include "modulo/baseline.h"
#include "modulo/coupled_scheduler.h"
#include "report/bench_json.h"
#include "workloads/paper_system.h"

using namespace mshls;

namespace {

void SweepPaperSystem(BenchJson& json) {
  std::printf("--- paper system (deadlines 30/30/25/15/15): eq.-3 "
              "compatible periods {1, 5} ---\n");
  TextTable table;
  table.SetHeader({"lambda", "adders", "subs", "mults", "area",
                   "grid (EWF)", "grid (diffeq)"});
  for (std::size_t c = 0; c < 7; ++c) table.AlignRight(c);
  for (int lambda : {1, 5}) {
    PaperSystemOptions options;
    options.period = lambda;
    PaperSystem sys = BuildPaperSystem(options);
    CoupledScheduler scheduler(sys.model, CoupledParams{});
    auto run = scheduler.Run();
    if (!run.ok()) {
      std::fprintf(stderr, "lambda=%d failed: %s\n", lambda,
                   run.status().ToString().c_str());
      continue;
    }
    const Allocation& a = run.value().allocation;
    table.AddRow({std::to_string(lambda),
                  std::to_string(a.TotalInstances(sys.types.add)),
                  std::to_string(a.TotalInstances(sys.types.sub)),
                  std::to_string(a.TotalInstances(sys.types.mult)),
                  std::to_string(a.TotalArea(sys.model.library())),
                  std::to_string(sys.model.GridSpacing(sys.ewf[0])),
                  std::to_string(sys.model.GridSpacing(sys.diffeq[0]))});
    json.AddRow()
        .S("variant", "paper")
        .I("lambda", lambda)
        .I("adders", a.TotalInstances(sys.types.add))
        .I("subtracters", a.TotalInstances(sys.types.sub))
        .I("multipliers", a.TotalInstances(sys.types.mult))
        .I("area", a.TotalArea(sys.model.library()))
        .I("grid_ewf", sys.model.GridSpacing(sys.ewf[0]))
        .I("grid_diffeq", sys.model.GridSpacing(sys.diffeq[0]));
  }
  std::printf("%s\n", table.Render().c_str());
}

void SweepEqualDeadlines(BenchJson& json) {
  // Equal deadlines 24 for all five processes: divisors 1..24 give a dense
  // sweep of the trade-off curve.
  std::printf("--- scaled variant (all deadlines 24): lambda sweep over "
              "divisors of 24 ---\n");
  TextTable table;
  table.SetHeader(
      {"lambda", "adders", "subs", "mults", "area", "activation grid"});
  for (std::size_t c = 0; c < 6; ++c) table.AlignRight(c);
  for (int lambda : {1, 2, 3, 4, 6, 8, 12, 24}) {
    PaperSystemOptions options;
    options.ewf_deadline_a = 24;
    options.ewf_deadline_b = 24;
    options.diffeq_deadline = 24;
    options.period = lambda;
    PaperSystem sys = BuildPaperSystem(options);
    CoupledScheduler scheduler(sys.model, CoupledParams{});
    auto run = scheduler.Run();
    if (!run.ok()) {
      std::fprintf(stderr, "lambda=%d failed: %s\n", lambda,
                   run.status().ToString().c_str());
      continue;
    }
    const Allocation& a = run.value().allocation;
    table.AddRow({std::to_string(lambda),
                  std::to_string(a.TotalInstances(sys.types.add)),
                  std::to_string(a.TotalInstances(sys.types.sub)),
                  std::to_string(a.TotalInstances(sys.types.mult)),
                  std::to_string(a.TotalArea(sys.model.library())),
                  std::to_string(sys.model.GridSpacing(sys.ewf[0]))});
    json.AddRow()
        .S("variant", "equal_deadlines")
        .I("lambda", lambda)
        .I("adders", a.TotalInstances(sys.types.add))
        .I("subtracters", a.TotalInstances(sys.types.sub))
        .I("multipliers", a.TotalInstances(sys.types.mult))
        .I("area", a.TotalArea(sys.model.library()))
        .I("grid", sys.model.GridSpacing(sys.ewf[0]));
  }
  std::printf("%s", table.Render().c_str());
  std::printf("expected shape: area falls (or holds) as lambda grows — more "
              "residue classes discriminate the processes — while the "
              "activation grid coarsens, delaying spontaneous events by up "
              "to lambda-1 steps (the paper's twofold impact).\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_file = TakeJsonFlag(argc, argv);
  std::printf("== A1: period trade-off sweep (paper §3.2) ==\n\n");
  BenchJson json("A1", "period_sweep");
  SweepPaperSystem(json);
  SweepEqualDeadlines(json);
  if (!json_file.empty() && !json.WriteFile(json_file)) return 1;
  return 0;
}
