file(REMOVE_RECURSE
  "CMakeFiles/time_frames_test.dir/time_frames_test.cpp.o"
  "CMakeFiles/time_frames_test.dir/time_frames_test.cpp.o.d"
  "time_frames_test"
  "time_frames_test.pdb"
  "time_frames_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_frames_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
