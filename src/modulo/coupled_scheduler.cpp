#include "modulo/coupled_scheduler.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "fds/distribution.h"
#include "fds/force.h"
#include "modulo/modulo_map.h"

namespace mshls {

CoupledScheduler::CoupledScheduler(const SystemModel& model,
                                   CoupledParams params)
    : model_(model), params_(std::move(params)) {
  const ResourceLibrary& lib = model_.library();
  blocks_.reserve(model_.block_count());
  delays_.reserve(model_.block_count());
  for (const Block& b : model_.blocks()) {
    delays_.push_back(model_.DelayOf(b.id));
    auto frames_or =
        TimeFrameSet::Compute(b.graph, delays_.back(), b.time_range);
    // Model validation guarantees feasibility of each block.
    assert(frames_or.ok());
    BlockState state;
    state.frames = std::move(frames_or).value();
    state.local.resize(lib.size());
    state.modulo.resize(lib.size());
    blocks_.push_back(std::move(state));
  }
  for (const Block& b : model_.blocks()) RebuildBlockState(b.id);
  mp_.assign(model_.process_count(),
             std::vector<Profile>(lib.size()));
  group_.assign(lib.size(), {});
  RebuildProcessAndGroupProfiles();
}

bool CoupledScheduler::GlobalForBlock(ResourceTypeId type,
                                      BlockId block) const {
  if (params_.mode == GlobalForceMode::kIgnoreGlobal) return false;
  if (!model_.is_global(type)) return false;
  return model_.InGroup(type, model_.block(block).process);
}

void CoupledScheduler::RebuildBlockState(BlockId bid) {
  const Block& b = model_.block(bid);
  const ResourceLibrary& lib = model_.library();
  BlockState& state = blocks_[bid.index()];
  for (const ResourceType& t : lib.types()) {
    state.local[t.id.index()] =
        BuildTypeProfile(b, lib, state.frames, t.id);
    if (GlobalForBlock(t.id, bid)) {
      const int lambda = model_.assignment(t.id).period;
      state.modulo[t.id.index()] = ModuloMaxTransform(
          std::span<const double>(state.local[t.id.index()]), b.phase,
          lambda);
    } else {
      state.modulo[t.id.index()].clear();
    }
  }
}

void CoupledScheduler::RebuildProcessAndGroupProfiles() {
  const ResourceLibrary& lib = model_.library();
  for (const ResourceType& t : lib.types()) {
    const std::size_t k = t.id.index();
    if (!model_.is_global(t.id) ||
        params_.mode == GlobalForceMode::kIgnoreGlobal) {
      group_[k].clear();
      for (auto& per_process : mp_) per_process[k].clear();
      continue;
    }
    const int lambda = model_.assignment(t.id).period;
    group_[k].assign(static_cast<std::size_t>(lambda), 0.0);
    for (const Process& p : model_.processes()) {
      Profile& m = mp_[p.id.index()][k];
      if (!model_.InGroup(t.id, p.id)) {
        m.clear();
        continue;
      }
      m.assign(static_cast<std::size_t>(lambda), 0.0);
      for (BlockId bid : p.blocks) {
        const Profile& d = blocks_[bid.index()].modulo[k];
        if (d.empty()) continue;
        for (std::size_t tau = 0; tau < m.size(); ++tau)
          m[tau] = std::max(m[tau], d[tau]);
      }
      for (std::size_t tau = 0; tau < m.size(); ++tau)
        group_[k][tau] += m[tau];
    }
  }
}

const Profile& CoupledScheduler::GroupProfile(ResourceTypeId type) const {
  return group_[type.index()];
}

double CoupledScheduler::EvaluateForce(BlockId bid, OpId op,
                                       TimeFrame target) const {
  const Block& b = model_.block(bid);
  const ResourceLibrary& lib = model_.library();
  const BlockState& state = blocks_[bid.index()];

  TimeFrameSet next = state.frames;
  {
    const Status s = next.Narrow(b.graph, delays_[bid.index()], op, target);
    assert(s.ok() && "narrowing inside a propagated frame must be feasible");
    (void)s;
  }

  // Per-type displacement of the block-local distribution.
  std::vector<Profile> dq(lib.size());
  std::vector<bool> touched(lib.size(), false);
  for (const Operation& o : b.graph.ops()) {
    const TimeFrame& before = state.frames.frame(o.id);
    const TimeFrame& after = next.frame(o.id);
    if (before == after) continue;
    auto& d = dq[o.type.index()];
    if (d.empty()) d.assign(static_cast<std::size_t>(b.time_range), 0.0);
    const int dii = lib.type(o.type).dii;
    AddOccupancyProbability(d, before, dii, -1.0);
    AddOccupancyProbability(d, after, dii, +1.0);
    touched[o.type.index()] = true;
  }

  double force = 0;
  for (const ResourceType& t : lib.types()) {
    const std::size_t k = t.id.index();
    if (!touched[k]) continue;
    const double w = TypeWeight(lib, t.id, params_.fds);

    if (!GlobalForBlock(t.id, bid)) {
      force += SpringForce(state.local[k], dq[k], params_.fds, w);
      continue;
    }

    // Displaced block distribution and its modulo-max transform (eq. 7/8).
    const int lambda = model_.assignment(t.id).period;
    Profile d_next = state.local[k];
    for (std::size_t i = 0; i < d_next.size(); ++i) d_next[i] += dq[k][i];
    const Profile modulo_next = ModuloMaxTransform(
        std::span<const double>(d_next), b.phase, lambda);
    const Profile& modulo_cur = state.modulo[k];

    if (params_.mode == GlobalForceMode::kBlockModuloOnly) {
      Profile delta(modulo_next.size());
      for (std::size_t tau = 0; tau < delta.size(); ++tau)
        delta[tau] = modulo_next[tau] - modulo_cur[tau];
      force += SpringForce(modulo_cur, delta, params_.fds, w);
      continue;
    }

    // Full chain (eq. 9): new process max, displacement of the group sum.
    const ProcessId pid = b.process;
    const Profile& m_cur = mp_[pid.index()][k];
    Profile m_next(modulo_next);
    for (BlockId other : model_.process(pid).blocks) {
      if (other == bid) continue;
      const Profile& od = blocks_[other.index()].modulo[k];
      if (od.empty()) continue;
      for (std::size_t tau = 0; tau < m_next.size(); ++tau)
        m_next[tau] = std::max(m_next[tau], od[tau]);
    }
    Profile delta(m_next.size());
    for (std::size_t tau = 0; tau < delta.size(); ++tau)
      delta[tau] = m_next[tau] - m_cur[tau];
    force += SpringForce(group_[k], delta, params_.fds, w);
  }
  return force;
}

StatusOr<CoupledResult> CoupledScheduler::Run() {
  int iterations = 0;
  for (;;) {
    bool all_fixed = true;
    for (const BlockState& s : blocks_)
      if (!s.frames.AllFixed()) {
        all_fixed = false;
        break;
      }
    if (all_fixed) break;

    CoupledIterationTrace trace;
    trace.iteration = iterations;
    double best_diff = -1.0;
    for (const Block& b : model_.blocks()) {
      const BlockState& state = blocks_[b.id.index()];
      for (const Operation& op : b.graph.ops()) {
        const TimeFrame& f = state.frames.frame(op.id);
        if (f.fixed()) continue;
        CoupledCandidate c;
        c.block = b.id;
        c.op = op.id;
        c.frame = f;
        c.force_begin =
            EvaluateForce(b.id, op.id, TimeFrame{f.asap, f.asap});
        c.force_end = EvaluateForce(b.id, op.id, TimeFrame{f.alap, f.alap});
        c.diff = std::abs(c.force_begin - c.force_end);
        if (f.width() > 2) c.diff *= params_.fds.mid_estimate;
        if (params_.observer) trace.candidates.push_back(c);
        if (c.diff > best_diff) {
          best_diff = c.diff;
          trace.chosen_block = c.block;
          trace.chosen_op = c.op;
          trace.shrank_begin = c.force_begin > c.force_end;
        }
      }
    }
    assert(trace.chosen_op.valid());

    BlockState& chosen = blocks_[trace.chosen_block.index()];
    const TimeFrame f = chosen.frames.frame(trace.chosen_op);
    const TimeFrame next = trace.shrank_begin
                               ? TimeFrame{f.asap + 1, f.alap}
                               : TimeFrame{f.asap, f.alap - 1};
    if (params_.observer) params_.observer(trace);
    if (Status s = chosen.frames.Narrow(
            model_.block(trace.chosen_block).graph,
            delays_[trace.chosen_block.index()], trace.chosen_op, next);
        !s.ok())
      return s;
    RebuildBlockState(trace.chosen_block);
    RebuildProcessAndGroupProfiles();
    ++iterations;
  }

  CoupledResult result;
  result.iterations = iterations;
  result.schedule.blocks.resize(model_.block_count());
  for (const Block& b : model_.blocks()) {
    BlockSchedule sched(b.graph.op_count());
    const BlockState& state = blocks_[b.id.index()];
    for (const Operation& op : b.graph.ops())
      sched.set_start(op.id, state.frames.frame(op.id).asap);
    result.schedule.of(b.id) = std::move(sched);
  }
  if (Status s = ValidateSystemSchedule(model_, result.schedule); !s.ok())
    return s;
  result.allocation = ComputeAllocation(model_, result.schedule);
  return result;
}

}  // namespace mshls
