// ASAP/ALAP time frames — the state a force-directed scheduler iterates on.
//
// A frame [asap, alap] holds the feasible *start* steps of an operation under
// the precedence constraints, the block time range, and any narrowing the
// scheduler has committed so far. The probability model of FDS (paper §4.1)
// is uniform over the frame.
#pragma once

#include <span>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "dfg/graph.h"

namespace mshls {

struct TimeFrame {
  int asap = 0;
  int alap = 0;
  [[nodiscard]] int width() const { return alap - asap + 1; }
  [[nodiscard]] bool fixed() const { return asap == alap; }
  [[nodiscard]] bool contains(int t) const { return asap <= t && t <= alap; }
  friend bool operator==(const TimeFrame&, const TimeFrame&) = default;
};

class TimeFrameSet {
 public:
  /// Computes initial frames for `graph` in time range [0, time_range).
  /// An op must finish inside the range: start <= time_range - delay(op).
  /// Fails with kInfeasible if the critical path does not fit.
  [[nodiscard]] static StatusOr<TimeFrameSet> Compute(
      const DataFlowGraph& graph, const DelayFn& delay, int time_range);

  [[nodiscard]] const TimeFrame& frame(OpId op) const {
    return frames_[op.index()];
  }
  [[nodiscard]] std::span<const TimeFrame> frames() const { return frames_; }
  [[nodiscard]] std::size_t size() const { return frames_.size(); }

  /// Narrows one frame (caller guarantees new [asap,alap] ⊆ old frame and
  /// asap <= alap) and transitively re-propagates precedence constraints
  /// through the graph. Returns kInfeasible if some frame becomes empty —
  /// in that case the set is left in an unspecified state and must be
  /// discarded (force-directed callers only apply reductions that are known
  /// feasible, so this is a programming-error guard, not a control path).
  [[nodiscard]] Status Narrow(const DataFlowGraph& graph, const DelayFn& delay,
                              OpId op, TimeFrame next);

  [[nodiscard]] bool AllFixed() const;

  /// Sum over ops of (width - 1): the number of single-step reductions an
  /// IFDS run still needs — its remaining iteration count.
  [[nodiscard]] int TotalSlack() const;

 private:
  [[nodiscard]] Status Propagate(const DataFlowGraph& graph,
                                 const DelayFn& delay);

  std::vector<TimeFrame> frames_;
};

}  // namespace mshls
