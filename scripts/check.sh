#!/usr/bin/env bash
# Sanitizer sweep for the robustness-critical subsystems: builds the tree
# with -DMSHLS_SANITIZE=address and =undefined and runs the `verify` and
# `engine` ctest labels (certifier, fault injection, degradation ladder,
# thread pool / job service) under each. The certifier's whole contract is
# "never crash on corrupted artifacts", so it is exercised under the
# sanitizers that would catch the silent out-of-bounds read behind a wrong
# verdict.
#
# Usage: scripts/check.sh [jobs]     (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

for san in address undefined; do
  build="build-${san:0:1}san"
  echo "==> MSHLS_SANITIZE=${san} (${build})"
  cmake -B "${build}" -S . -DMSHLS_SANITIZE="${san}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "${build}" -j "${jobs}" > /dev/null
  ctest --test-dir "${build}" -L 'verify|engine' --output-on-failure \
        -j "${jobs}"
done
echo "==> all sanitizer runs passed"
