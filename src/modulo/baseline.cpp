#include "modulo/baseline.h"

namespace mshls {

StatusOr<CoupledResult> ScheduleLocalBaseline(SystemModel& model,
                                              const CoupledParams& params) {
  // Save the S1/S2 state.
  struct Saved {
    ResourceTypeId type;
    TypeAssignment assignment;
  };
  std::vector<Saved> saved;
  for (ResourceTypeId g : model.GlobalTypes())
    saved.push_back({g, model.assignment(g)});
  for (const Saved& s : saved) model.MakeLocal(s.type);

  if (Status st = model.Validate(); !st.ok()) return st;
  CoupledParams local_params = params;
  local_params.mode = GlobalForceMode::kIgnoreGlobal;
  CoupledScheduler scheduler(model, std::move(local_params));
  auto result = scheduler.Run();

  // Restore regardless of outcome.
  for (const Saved& s : saved) {
    model.MakeGlobal(s.type, s.assignment.group);
    model.SetPeriod(s.type, s.assignment.period);
  }
  return result;
}

}  // namespace mshls
