// System model: processes, blocks and the resource-sharing assignment.
//
// This is the input structure of the paper's method:
//  * A system is a set of independent *processes* (paper §1: reactive tasks
//    with unpredictable activation times).
//  * A process is composed of *blocks*: connected regions that are scheduled
//    statically (condition C1). Blocks of one process sharing a resource
//    must not overlap in execution (condition C2) — enforced at runtime by
//    the activation rules, checked by the simulator substrate.
//  * Step (S1): each resource type is either *local* (classic: every process
//    gets its own instances) or *global* (one instance pool shared by a
//    process group).
//  * Step (S2): each global type g carries a period lambda_g; absolute time
//    maps to the period by tau = t mod lambda_g (paper eq. 1). Block start
//    times are then restricted to a grid with spacing
//    lcm{lambda_g : g used globally by the process} (paper eq. 2/3).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "dfg/graph.h"
#include "model/resource.h"

namespace mshls {

enum class AssignmentScope { kLocal, kGlobal };

/// S1/S2 state of one resource type.
struct TypeAssignment {
  AssignmentScope scope = AssignmentScope::kLocal;
  /// Sharing process group; meaningful only for kGlobal. A process that
  /// uses the type but is not in the group falls back to local instances.
  std::vector<ProcessId> group;
  /// Period lambda_g (S2); meaningful only for kGlobal, >= 1.
  int period = 0;
};

struct Block {
  BlockId id;
  ProcessId process;
  std::string name;
  DataFlowGraph graph;
  /// Time range T_b: operations are scheduled into steps [0, time_range).
  int time_range = 0;
  /// Start residue: activations of this block must begin at absolute times
  /// t0 with t0 ≡ phase (mod grid spacing of the owning process).
  int phase = 0;
};

struct Process {
  ProcessId id;
  std::string name;
  std::vector<BlockId> blocks;
  /// Informative total execution-time constraint (the per-block time_range
  /// values are the binding constraints; for single-block processes the two
  /// coincide, as in the paper's experiment).
  int deadline = 0;
};

class SystemModel {
 public:
  [[nodiscard]] ResourceLibrary& library() { return library_; }
  [[nodiscard]] const ResourceLibrary& library() const { return library_; }

  ProcessId AddProcess(std::string_view name, int deadline = 0);

  /// Adds a block; the graph must already be Validate()d by the caller or
  /// will be validated by SystemModel::Validate().
  BlockId AddBlock(ProcessId process, std::string_view name,
                   DataFlowGraph graph, int time_range, int phase = 0);

  /// S1: marks `type` as globally shared by `group`.
  void MakeGlobal(ResourceTypeId type, std::vector<ProcessId> group);
  /// Reverts `type` to local assignment.
  void MakeLocal(ResourceTypeId type);
  /// S2: sets the period lambda of a global type.
  void SetPeriod(ResourceTypeId type, int period);

  [[nodiscard]] std::size_t process_count() const { return processes_.size(); }
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  [[nodiscard]] const Process& process(ProcessId id) const {
    return processes_[id.index()];
  }
  [[nodiscard]] const std::vector<Process>& processes() const {
    return processes_;
  }
  [[nodiscard]] const Block& block(BlockId id) const {
    return blocks_[id.index()];
  }
  [[nodiscard]] Block& mutable_block(BlockId id) { return blocks_[id.index()]; }
  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }

  [[nodiscard]] const TypeAssignment& assignment(ResourceTypeId type) const;
  [[nodiscard]] bool is_global(ResourceTypeId type) const {
    return assignment(type).scope == AssignmentScope::kGlobal;
  }
  /// All globally assigned resource types, ascending by id.
  [[nodiscard]] std::vector<ResourceTypeId> GlobalTypes() const;

  /// True if `process` is a member of the sharing group of global `type`.
  [[nodiscard]] bool InGroup(ResourceTypeId type, ProcessId process) const;

  /// True if any block of `process` contains an op of `type`.
  [[nodiscard]] bool ProcessUsesType(ProcessId process,
                                     ResourceTypeId type) const;

  /// Processes that use `type` through the global pool (group members with
  /// at least one op of the type), ascending — the set uses(g) of §3.1.
  [[nodiscard]] std::vector<ProcessId> GlobalUsers(ResourceTypeId type) const;

  /// Global types whose group contains `process` and which the process
  /// actually uses — the set G_p of §3.1.
  [[nodiscard]] std::vector<ResourceTypeId> GlobalTypesOf(
      ProcessId process) const;

  /// Start-time grid spacing of a process: lcm of the periods of all global
  /// types in G_p (paper eq. 3); 1 if the process uses no global type (its
  /// blocks may start anywhere, paper §3.2).
  [[nodiscard]] std::int64_t GridSpacing(ProcessId process) const;

  /// Validates library, graphs, type references, C1 feasibility (the time
  /// range of every block admits its critical path), group/period sanity and
  /// phase ranges. Must pass before running any scheduler on the model.
  [[nodiscard]] Status Validate();

  /// Delay lookup for the ops of `block`, bound to this model's library.
  [[nodiscard]] DelayFn DelayOf(BlockId block) const;

 private:
  ResourceLibrary library_;
  std::vector<Process> processes_;
  std::vector<Block> blocks_;
  std::vector<TypeAssignment> assignments_;  // index = resource type id

  void EnsureAssignmentSize();
};

}  // namespace mshls
