#include "dfg/graph.h"

#include <algorithm>
#include <cassert>

namespace mshls {

OpId DataFlowGraph::AddOp(ResourceTypeId type, std::string_view name) {
  const OpId id{static_cast<OpId::value_type>(ops_.size())};
  ops_.push_back(Operation{id, type, std::string(name)});
  validated_ = false;
  return id;
}

EdgeId DataFlowGraph::AddEdge(OpId from, OpId to) {
  const EdgeId id{static_cast<EdgeId::value_type>(edges_.size())};
  edges_.push_back(Edge{id, from, to});
  validated_ = false;
  return id;
}

Status DataFlowGraph::Validate() {
  const auto n = ops_.size();
  for (const Edge& e : edges_) {
    if (!e.from.valid() || e.from.index() >= n || !e.to.valid() ||
        e.to.index() >= n) {
      return {StatusCode::kInvalidArgument,
              "edge " + std::to_string(e.id.value()) +
                  " references an out-of-range operation"};
    }
    if (e.from == e.to) {
      return {StatusCode::kInvalidArgument,
              "self-loop on operation " + std::to_string(e.from.value())};
    }
  }
  for (const Operation& op : ops_) {
    if (!op.type.valid()) {
      return {StatusCode::kInvalidArgument,
              "operation " + std::to_string(op.id.value()) +
                  " has no resource type"};
    }
  }

  // Deduplicate parallel edges (keep first occurrence order).
  std::vector<Edge> unique;
  unique.reserve(edges_.size());
  std::vector<std::vector<bool>> seen;  // lazily sized rows
  seen.resize(n);
  for (const Edge& e : edges_) {
    auto& row = seen[e.from.index()];
    if (row.empty()) row.resize(n, false);
    if (row[e.to.index()]) continue;
    row[e.to.index()] = true;
    unique.push_back(e);
  }
  edges_ = std::move(unique);
  for (std::size_t i = 0; i < edges_.size(); ++i)
    edges_[i].id = EdgeId{static_cast<EdgeId::value_type>(i)};

  preds_.assign(n, {});
  succs_.assign(n, {});
  for (const Edge& e : edges_) {
    preds_[e.to.index()].push_back(e.from);
    succs_[e.from.index()].push_back(e.to);
  }
  for (auto& v : preds_) std::sort(v.begin(), v.end());
  for (auto& v : succs_) std::sort(v.begin(), v.end());

  // Kahn's algorithm with a sorted ready set for a stable, id-ordered
  // topological order (determinism matters: tie-breaking in the schedulers
  // follows this order).
  std::vector<int> indegree(n, 0);
  for (const Edge& e : edges_) ++indegree[e.to.index()];
  std::vector<OpId> ready;
  for (std::size_t i = 0; i < n; ++i)
    if (indegree[i] == 0) ready.push_back(OpId{static_cast<int>(i)});
  topo_.clear();
  topo_.reserve(n);
  while (!ready.empty()) {
    // Pop the smallest id (ready is kept sorted descending for O(1) pop).
    std::sort(ready.begin(), ready.end(), std::greater<>());
    const OpId cur = ready.back();
    ready.pop_back();
    topo_.push_back(cur);
    for (OpId s : succs_[cur.index()]) {
      if (--indegree[s.index()] == 0) ready.push_back(s);
    }
  }
  if (topo_.size() != n) {
    return {StatusCode::kInvalidArgument, "data-flow graph contains a cycle"};
  }
  validated_ = true;
  return Status::Ok();
}

int DataFlowGraph::CriticalPathLength(const DelayFn& delay) const {
  assert(validated_);
  std::vector<int> finish(ops_.size(), 0);
  int longest = 0;
  for (OpId id : topo_) {
    int start = 0;
    for (OpId p : preds_[id.index()]) start = std::max(start, finish[p.index()]);
    const int d = delay(id);
    assert(d >= 1 && "operation delay must be positive");
    finish[id.index()] = start + d;
    longest = std::max(longest, finish[id.index()]);
  }
  return longest;
}

std::vector<OpId> DataFlowGraph::SourceOps() const {
  assert(validated_);
  std::vector<OpId> out;
  for (const Operation& op : ops_)
    if (preds_[op.id.index()].empty()) out.push_back(op.id);
  return out;
}

std::vector<OpId> DataFlowGraph::SinkOps() const {
  assert(validated_);
  std::vector<OpId> out;
  for (const Operation& op : ops_)
    if (succs_[op.id.index()].empty()) out.push_back(op.id);
  return out;
}

std::vector<int> CountOpsPerType(const DataFlowGraph& graph) {
  int max_type = -1;
  for (const Operation& op : graph.ops())
    max_type = std::max(max_type, op.type.value());
  std::vector<int> counts(static_cast<std::size_t>(max_type + 1), 0);
  for (const Operation& op : graph.ops()) ++counts[op.type.index()];
  return counts;
}

}  // namespace mshls
