file(REMOVE_RECURSE
  "CMakeFiles/vsim_test.dir/vsim_test.cpp.o"
  "CMakeFiles/vsim_test.dir/vsim_test.cpp.o.d"
  "vsim_test"
  "vsim_test.pdb"
  "vsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
