// Tests of the in-tree Verilog-subset simulator, culminating in the full
// loop: model -> coupled modulo scheduling -> binding -> emitted Verilog
// -> parsed back -> simulated -> outputs equal the data-flow reference.
#include <gtest/gtest.h>

#include "bind/binding.h"
#include "modulo/coupled_scheduler.h"
#include "rtl/verilog_gen.h"
#include "sim/op_semantics.h"
#include "sim/value_executor.h"
#include "vsim/vsim.h"
#include "workloads/benchmarks.h"

namespace mshls {
namespace {

// ---- interpreter unit tests on handwritten snippets ----

TEST(VsimUnitTest, FreeRunningCounter) {
  constexpr const char* kSrc = R"(
module top (
  input  wire clk,
  input  wire rst,
  output wire [15:0] value
);
  reg [15:0] c;
  always @(posedge clk) begin
    if (rst) c <= 0;
    else c <= c + 1;
  end
  assign value = c;
endmodule
)";
  auto sim_or = VerilogSimulator::Elaborate(kSrc, "top");
  ASSERT_TRUE(sim_or.ok()) << sim_or.status().ToString();
  VerilogSimulator sim = std::move(sim_or).value();
  ASSERT_TRUE(sim.Poke("rst", 1).ok());
  ASSERT_TRUE(sim.Step().ok());
  ASSERT_TRUE(sim.Poke("rst", 0).ok());
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(sim.Step().ok());
    EXPECT_EQ(sim.Peek("value").value(), static_cast<std::uint64_t>(i));
  }
}

TEST(VsimUnitTest, WrappingModuloCounter) {
  constexpr const char* kSrc = R"(
module top (
  input wire clk,
  input wire rst,
  output wire [15:0] value
);
  reg [15:0] c;
  always @(posedge clk) begin
    if (rst) c <= 0;
    else c <= (c == 2) ? 16'd0 : c + 16'd1;
  end
  assign value = c;
endmodule
)";
  auto sim_or = VerilogSimulator::Elaborate(kSrc, "top");
  ASSERT_TRUE(sim_or.ok());
  VerilogSimulator sim = std::move(sim_or).value();
  ASSERT_TRUE(sim.Poke("rst", 1).ok());
  ASSERT_TRUE(sim.Step().ok());
  ASSERT_TRUE(sim.Poke("rst", 0).ok());
  std::vector<std::uint64_t> seen;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(sim.Step().ok());
    seen.push_back(sim.Peek("value").value());
  }
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2, 0, 1, 2, 0}));
}

TEST(VsimUnitTest, CombinationalCaseMux) {
  constexpr const char* kSrc = R"(
module top (
  input wire [1:0] sel,
  input wire [15:0] a,
  input wire [15:0] b,
  output wire [15:0] y
);
  reg [15:0] t;
  always @* begin
    t = {16{1'b0}};
    case (sel)
      0: t = a;
      1: t = b;
      2: begin t = a + b; end
    endcase
  end
  assign y = t;
endmodule
)";
  auto sim_or = VerilogSimulator::Elaborate(kSrc, "top");
  ASSERT_TRUE(sim_or.ok()) << sim_or.status().ToString();
  VerilogSimulator sim = std::move(sim_or).value();
  ASSERT_TRUE(sim.Poke("a", 7).ok());
  ASSERT_TRUE(sim.Poke("b", 5).ok());
  ASSERT_TRUE(sim.Poke("sel", 0).ok());
  ASSERT_TRUE(sim.Settle().ok());
  EXPECT_EQ(sim.Peek("y").value(), 7u);
  ASSERT_TRUE(sim.Poke("sel", 1).ok());
  ASSERT_TRUE(sim.Settle().ok());
  EXPECT_EQ(sim.Peek("y").value(), 5u);
  ASSERT_TRUE(sim.Poke("sel", 2).ok());
  ASSERT_TRUE(sim.Settle().ok());
  EXPECT_EQ(sim.Peek("y").value(), 12u);
  ASSERT_TRUE(sim.Poke("sel", 3).ok());  // default: zero
  ASSERT_TRUE(sim.Settle().ok());
  EXPECT_EQ(sim.Peek("y").value(), 0u);
}

TEST(VsimUnitTest, HierarchyAndParameterPropagation) {
  constexpr const char* kSrc = R"(
module adder #(parameter WIDTH = 16) (
  input wire clk,
  input wire [WIDTH-1:0] a,
  input wire [WIDTH-1:0] b,
  output wire [WIDTH-1:0] y
);
  assign y = a + b;
endmodule
module top #(parameter WIDTH = 16) (
  input wire clk,
  input wire [WIDTH-1:0] x,
  output wire [WIDTH-1:0] y
);
  wire [WIDTH-1:0] t;
  adder #(WIDTH) u1 (.clk(clk), .a(x), .b(x), .y(t));
  adder #(WIDTH) u2 (.clk(clk), .a(t), .b(x), .y(y));
endmodule
)";
  auto sim_or = VerilogSimulator::Elaborate(kSrc, "top", /*width=*/8);
  ASSERT_TRUE(sim_or.ok()) << sim_or.status().ToString();
  VerilogSimulator sim = std::move(sim_or).value();
  ASSERT_TRUE(sim.Poke("x", 100).ok());
  ASSERT_TRUE(sim.Settle().ok());
  // 3 * 100 = 300, masked to 8 bits = 44.
  EXPECT_EQ(sim.Peek("y").value(), 300u & 0xFF);
  EXPECT_EQ(sim.Peek("u1.y").value(), 200u & 0xFF);
}

TEST(VsimUnitTest, PipelinedUnitDelaysOneCycle) {
  constexpr const char* kSrc = R"(
module top (
  input wire clk,
  input wire [15:0] a,
  input wire [15:0] b,
  output wire [15:0] y
);
  wire [15:0] result = a * b;
  reg [15:0] p0;
  always @(posedge clk) begin
    p0 <= result;
  end
  assign y = p0;
endmodule
)";
  auto sim_or = VerilogSimulator::Elaborate(kSrc, "top");
  ASSERT_TRUE(sim_or.ok());
  VerilogSimulator sim = std::move(sim_or).value();
  ASSERT_TRUE(sim.Poke("a", 6).ok());
  ASSERT_TRUE(sim.Poke("b", 7).ok());
  ASSERT_TRUE(sim.Step().ok());
  EXPECT_EQ(sim.Peek("y").value(), 42u);
  ASSERT_TRUE(sim.Poke("a", 3).ok());
  EXPECT_EQ(sim.Peek("y").value(), 42u);  // not yet clocked
  ASSERT_TRUE(sim.Step().ok());
  EXPECT_EQ(sim.Peek("y").value(), 21u);
}

TEST(VsimUnitTest, ConcatAndComparison) {
  constexpr const char* kSrc = R"(
module top (
  input wire [15:0] a,
  input wire [15:0] b,
  output wire [15:0] y
);
  assign y = {{(16-1){1'b0}}, (a < b)};
endmodule
)";
  auto sim_or = VerilogSimulator::Elaborate(kSrc, "top");
  ASSERT_TRUE(sim_or.ok()) << sim_or.status().ToString();
  VerilogSimulator sim = std::move(sim_or).value();
  ASSERT_TRUE(sim.Poke("a", 2).ok());
  ASSERT_TRUE(sim.Poke("b", 9).ok());
  ASSERT_TRUE(sim.Settle().ok());
  EXPECT_EQ(sim.Peek("y").value(), 1u);
  ASSERT_TRUE(sim.Poke("a", 9).ok());
  ASSERT_TRUE(sim.Settle().ok());
  EXPECT_EQ(sim.Peek("y").value(), 0u);
}

TEST(VsimUnitTest, ReportsUnknownTopAndSyntaxErrors) {
  EXPECT_FALSE(VerilogSimulator::Elaborate("module a (); endmodule", "b")
                   .ok());
  auto bad = VerilogSimulator::Elaborate("module a ( banana ", "a");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kParseError);
}

TEST(VsimUnitTest, DetectsCombinationalLoop) {
  constexpr const char* kSrc = R"(
module top (
  input wire clk,
  output wire [15:0] y
);
  wire [15:0] a;
  assign a = a + 1;
  assign y = a;
endmodule
)";
  auto sim = VerilogSimulator::Elaborate(kSrc, "top");
  ASSERT_FALSE(sim.ok());
  EXPECT_EQ(sim.status().code(), StatusCode::kInternal);
}

TEST(VsimUnitTest, PokingDrivenSignalRejected) {
  constexpr const char* kSrc = R"(
module top (
  input wire [15:0] a,
  output wire [15:0] y
);
  assign y = a;
endmodule
)";
  auto sim_or = VerilogSimulator::Elaborate(kSrc, "top");
  ASSERT_TRUE(sim_or.ok());
  VerilogSimulator sim = std::move(sim_or).value();
  EXPECT_FALSE(sim.Poke("y", 1).ok());
  EXPECT_FALSE(sim.Poke("ghost", 1).ok());
}

// ---- the full loop: generated RTL computes the reference values ----

class RtlLoopTest : public ::testing::Test {
 protected:
  static constexpr int kWidth = 16;
  static constexpr std::uint64_t kMask = 0xFFFF;

  struct System {
    SystemModel model;
    CoupledResult result;
    SystemBinding binding;
    std::string verilog;
  };

  System Build(SystemModel model) {
    System sys{std::move(model), {}, {}, {}};
    EXPECT_TRUE(sys.model.Validate().ok());
    CoupledScheduler scheduler(sys.model, CoupledParams{});
    auto run = scheduler.Run();
    EXPECT_TRUE(run.ok());
    sys.result = std::move(run).value();
    auto binding =
        BindSystem(sys.model, sys.result.schedule, sys.result.allocation);
    EXPECT_TRUE(binding.ok());
    sys.binding = std::move(binding).value();
    auto design = GenerateRtl(sys.model, sys.result.schedule,
                              sys.result.allocation, sys.binding);
    EXPECT_TRUE(design.ok());
    sys.verilog = std::move(design).value().source;
    return sys;
  }

  static std::string Sane(const std::string& s) { return s; }

  /// Drives every data input port of `proc` for `block` with the same
  /// synthesized values the reference evaluation uses.
  void PokeInputs(VerilogSimulator& sim, const System&,
                  const Process& proc, const Block& block,
                  std::uint64_t seed) {
    for (const Operation& op : block.graph.ops()) {
      const std::size_t preds = block.graph.preds(op.id).size();
      for (std::size_t k = preds; k < 2; ++k) {
        const std::string port = proc.name + "_in_" + block.name + "_" +
                                 std::to_string(op.id.value()) + "_" +
                                 std::to_string(k);
        ASSERT_TRUE(sim.Poke(port, static_cast<std::uint64_t>(
                                       SynthesizedInput(seed, op.id, k)) &
                                       kMask)
                        .ok())
            << port;
      }
    }
  }

  /// Expected sink values from the data-flow reference, masked.
  std::map<int, std::uint64_t> ExpectedOutputs(const System& sys,
                                               const Block& block,
                                               std::uint64_t seed) {
    ValueExecOptions options;
    options.input_seed = seed;
    const auto ref =
        EvaluateGraph(block, sys.model.library(), options);
    std::map<int, std::uint64_t> out;
    for (OpId sink : block.graph.SinkOps())
      out[sink.value()] =
          static_cast<std::uint64_t>(ref[sink.index()]) & kMask;
    return out;
  }
};

TEST_F(RtlLoopTest, SingleProcessComputesReferenceValues) {
  SystemModel model;
  const PaperTypes t = AddPaperTypes(model.library());
  const ProcessId p = model.AddProcess("deq", 12);
  const BlockId b = model.AddBlock(p, "main", BuildDiffeq(t), 12);
  System sys = Build(std::move(model));

  auto sim_or = VerilogSimulator::Elaborate(sys.verilog, "mshls_system");
  ASSERT_TRUE(sim_or.ok()) << sim_or.status().ToString();
  VerilogSimulator sim = std::move(sim_or).value();

  const std::uint64_t seed = 42;
  ASSERT_TRUE(sim.Poke("rst", 1).ok());
  ASSERT_TRUE(sim.Step().ok());
  ASSERT_TRUE(sim.Poke("rst", 0).ok());
  const Process& proc = sys.model.process(p);
  const Block& block = sys.model.block(b);
  PokeInputs(sim, sys, proc, block, seed);

  ASSERT_TRUE(sim.Poke("start_deq_main", 1).ok());
  ASSERT_TRUE(sim.Step().ok());
  ASSERT_TRUE(sim.Poke("start_deq_main", 0).ok());
  ASSERT_TRUE(sim.Settle().ok());
  EXPECT_EQ(sim.Peek("busy_deq").value(), 1u);
  for (int c = 0; c < block.time_range; ++c) ASSERT_TRUE(sim.Step().ok());
  EXPECT_EQ(sim.Peek("busy_deq").value(), 0u);

  for (const auto& [sink, expected] : ExpectedOutputs(sys, block, seed)) {
    const std::string port =
        "deq_out_main_" + std::to_string(sink);
    auto got = sim.Peek(port);
    ASSERT_TRUE(got.ok()) << port;
    EXPECT_EQ(got.value(), expected) << port;
  }
}

TEST_F(RtlLoopTest, TwoProcessesShareOneMultiplierPoolCorrectly) {
  // The crown test: two concurrent processes, one shared multiplier, the
  // residue counter drives the pool mux — and both still compute their
  // reference values through the real generated hardware description.
  SystemModel model;
  const PaperTypes t = AddPaperTypes(model.library());
  std::vector<ProcessId> procs;
  for (int i = 0; i < 2; ++i) {
    DataFlowGraph g;
    const OpId m1 = g.AddOp(t.mult, "m1");
    const OpId m2 = g.AddOp(t.mult, "m2");
    const OpId a1 = g.AddOp(t.add, "a1");
    g.AddEdge(m1, a1);
    g.AddEdge(m2, a1);
    EXPECT_TRUE(g.Validate().ok());
    const ProcessId p = model.AddProcess("p" + std::to_string(i), 8);
    model.AddBlock(p, "blk", std::move(g), 8);
    procs.push_back(p);
  }
  model.MakeGlobal(t.mult, procs);
  model.SetPeriod(t.mult, 4);
  System sys = Build(std::move(model));
  ASSERT_EQ(sys.result.allocation.FindGlobal(t.mult)->instances, 1);

  auto sim_or = VerilogSimulator::Elaborate(sys.verilog, "mshls_system");
  ASSERT_TRUE(sim_or.ok()) << sim_or.status().ToString();
  VerilogSimulator sim = std::move(sim_or).value();

  const std::uint64_t seed = 7;
  ASSERT_TRUE(sim.Poke("rst", 1).ok());
  ASSERT_TRUE(sim.Step().ok());
  ASSERT_TRUE(sim.Poke("rst", 0).ok());
  for (ProcessId pid : procs)
    PokeInputs(sim, sys, sys.model.process(pid),
               sys.model.block(sys.model.process(pid).blocks[0]), seed);

  // Align the joint start with residue 0 of the pool counter: pulse start
  // during the cycle whose NEXT edge wraps cnt_mult to 0.
  for (int guard = 0; guard < 8; ++guard) {
    if (sim.Peek("cnt_mult").value() == 3) break;
    ASSERT_TRUE(sim.Step().ok());
  }
  ASSERT_EQ(sim.Peek("cnt_mult").value(), 3u);
  ASSERT_TRUE(sim.Poke("start_p0_blk", 1).ok());
  ASSERT_TRUE(sim.Poke("start_p1_blk", 1).ok());
  ASSERT_TRUE(sim.Step().ok());
  ASSERT_TRUE(sim.Poke("start_p0_blk", 0).ok());
  ASSERT_TRUE(sim.Poke("start_p1_blk", 0).ok());
  EXPECT_EQ(sim.Peek("cnt_mult").value(), 0u);  // aligned

  for (int c = 0; c < 8; ++c) ASSERT_TRUE(sim.Step().ok());
  ASSERT_TRUE(sim.Settle().ok());
  EXPECT_EQ(sim.Peek("busy_p0").value(), 0u);
  EXPECT_EQ(sim.Peek("busy_p1").value(), 0u);

  for (int i = 0; i < 2; ++i) {
    const Process& proc = sys.model.process(procs[static_cast<std::size_t>(
        i)]);
    const Block& block = sys.model.block(proc.blocks[0]);
    for (const auto& [sink, expected] :
         ExpectedOutputs(sys, block, seed)) {
      const std::string port =
          proc.name + "_out_blk_" + std::to_string(sink);
      auto got = sim.Peek(port);
      ASSERT_TRUE(got.ok()) << port;
      EXPECT_EQ(got.value(), expected)
          << proc.name << " sink " << sink
          << " (shared-pool datapath corrupted)";
    }
  }
}

class RtlLoopProperty : public RtlLoopTest,
                        public ::testing::WithParamInterface<std::uint64_t> {
};

TEST_P(RtlLoopProperty, RandomGraphsComputeReferenceValues) {
  // Property sweep: random DFG -> schedule -> bind -> Verilog -> parse ->
  // simulate -> compare every sink with the reference.
  Rng rng(GetParam() * 7919 + 5);
  SystemModel model;
  const PaperTypes t = AddPaperTypes(model.library());
  RandomDfgOptions options;
  options.ops = rng.NextInt(5, 16);
  options.layers = rng.NextInt(2, 4);
  options.mult_probability = 0.3;
  DataFlowGraph g = BuildRandomDfg(t, rng, options);
  const DelayFn delay = [&](OpId op) {
    return model.library().type(g.op(op).type).delay;
  };
  const int range = g.CriticalPathLength(delay) + rng.NextInt(1, 6);
  const ProcessId p = model.AddProcess("rnd", range);
  const BlockId b = model.AddBlock(p, "blk", std::move(g), range);
  System sys = Build(std::move(model));

  auto sim_or = VerilogSimulator::Elaborate(sys.verilog, "mshls_system");
  ASSERT_TRUE(sim_or.ok()) << sim_or.status().ToString();
  VerilogSimulator sim = std::move(sim_or).value();
  const std::uint64_t seed = GetParam();
  ASSERT_TRUE(sim.Poke("rst", 1).ok());
  ASSERT_TRUE(sim.Step().ok());
  ASSERT_TRUE(sim.Poke("rst", 0).ok());
  const Block& block = sys.model.block(b);
  PokeInputs(sim, sys, sys.model.process(p), block, seed);
  ASSERT_TRUE(sim.Poke("start_rnd_blk", 1).ok());
  ASSERT_TRUE(sim.Step().ok());
  ASSERT_TRUE(sim.Poke("start_rnd_blk", 0).ok());
  for (int c = 0; c < block.time_range; ++c) ASSERT_TRUE(sim.Step().ok());
  for (const auto& [sink, expected] : ExpectedOutputs(sys, block, seed)) {
    auto got = sim.Peek("rnd_out_blk_" + std::to_string(sink));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), expected) << "sink " << sink;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtlLoopProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST_F(RtlLoopTest, EwfThroughGeneratedHardware) {
  SystemModel model;
  const PaperTypes t = AddPaperTypes(model.library());
  const ProcessId p = model.AddProcess("ewf", 20);
  const BlockId b = model.AddBlock(p, "main", BuildEwf(t), 20);
  System sys = Build(std::move(model));

  auto sim_or = VerilogSimulator::Elaborate(sys.verilog, "mshls_system");
  ASSERT_TRUE(sim_or.ok()) << sim_or.status().ToString();
  VerilogSimulator sim = std::move(sim_or).value();
  const std::uint64_t seed = 3;
  ASSERT_TRUE(sim.Poke("rst", 1).ok());
  ASSERT_TRUE(sim.Step().ok());
  ASSERT_TRUE(sim.Poke("rst", 0).ok());
  const Block& block = sys.model.block(b);
  PokeInputs(sim, sys, sys.model.process(p), block, seed);
  ASSERT_TRUE(sim.Poke("start_ewf_main", 1).ok());
  ASSERT_TRUE(sim.Step().ok());
  ASSERT_TRUE(sim.Poke("start_ewf_main", 0).ok());
  for (int c = 0; c < block.time_range; ++c) ASSERT_TRUE(sim.Step().ok());

  int checked = 0;
  for (const auto& [sink, expected] : ExpectedOutputs(sys, block, seed)) {
    auto got = sim.Peek("ewf_out_main_" + std::to_string(sink));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), expected) << "sink " << sink;
    ++checked;
  }
  EXPECT_GE(checked, 5);  // EWF has five write-back sinks
}

}  // namespace
}  // namespace mshls
