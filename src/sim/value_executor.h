// Value-level execution of a scheduled, register-allocated block.
//
// The structural validators prove no resource is double-booked; this
// executor proves the *dataflow* survives the datapath: it runs the block
// cycle by cycle against a model of the process register file (one
// register per left-edge slot, written when a producer finishes) and
// checks that every consumer still finds its operand in the producer's
// register — i.e. that no live value was clobbered by register reuse —
// and that the final values equal a direct evaluation of the data-flow
// graph. A register allocation forged to be too small is caught as a
// clobbered-operand mismatch (see tests).
//
// Semantics by resource-type name, folded left over the operand list:
// add (+), sub (-), mult/mul (*), div (/ with x/0 = 0), cmp (<); other
// names fall back to +. Missing operands (block inputs) are synthesized
// deterministically from a seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bind/registers.h"
#include "model/system_model.h"
#include "sched/schedule.h"

namespace mshls {

struct ValueExecOptions {
  std::uint64_t input_seed = 1;
};

struct ValueExecReport {
  bool ok = false;
  /// First divergence found (empty when ok).
  std::string mismatch;
  /// Reference value per op id (direct DFG evaluation).
  std::vector<std::int64_t> reference;
  /// Value per op id as produced through the register file.
  std::vector<std::int64_t> executed;
};

/// Direct evaluation of the graph (no schedule involved).
[[nodiscard]] std::vector<std::int64_t> EvaluateGraph(
    const Block& block, const ResourceLibrary& lib,
    const ValueExecOptions& options = {});

/// Cycle-accurate register-file execution of `schedule` under `registers`.
[[nodiscard]] ValueExecReport ExecuteBlockWithRegisters(
    const Block& block, const ResourceLibrary& lib,
    const BlockSchedule& schedule, const BlockRegisterAllocation& registers,
    const ValueExecOptions& options = {});

}  // namespace mshls
