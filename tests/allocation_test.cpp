#include <gtest/gtest.h>

#include "modulo/allocation.h"
#include "workloads/benchmarks.h"

namespace mshls {
namespace {

/// Fixture with a hand-scheduled two-process system so every allocation
/// number can be verified against pencil-and-paper values.
class AllocationTest : public ::testing::Test {
 protected:
  SystemModel model_;
  PaperTypes types_ = AddPaperTypes(model_.library());
  ProcessId p1_, p2_;
  BlockId b1_, b2_;

  void SetUp() override {
    // p1: three adds; p2: two adds + one mult. Time range 6, period 3.
    DataFlowGraph g1;
    for (int i = 0; i < 3; ++i) g1.AddOp(types_.add, "a" + std::to_string(i));
    ASSERT_TRUE(g1.Validate().ok());
    p1_ = model_.AddProcess("p1", 6);
    b1_ = model_.AddBlock(p1_, "b1", std::move(g1), 6);

    DataFlowGraph g2;
    g2.AddOp(types_.add, "x0");
    g2.AddOp(types_.add, "x1");
    g2.AddOp(types_.mult, "m0");
    ASSERT_TRUE(g2.Validate().ok());
    p2_ = model_.AddProcess("p2", 6);
    b2_ = model_.AddBlock(p2_, "b2", std::move(g2), 6);

    model_.MakeGlobal(types_.add, {p1_, p2_});
    model_.SetPeriod(types_.add, 3);
    ASSERT_TRUE(model_.Validate().ok());
  }

  SystemSchedule MakeSchedule(std::vector<int> s1, std::vector<int> s2) {
    SystemSchedule sched;
    sched.blocks.resize(2);
    sched.of(b1_) = BlockSchedule(3);
    for (int i = 0; i < 3; ++i) sched.of(b1_).set_start(OpId{i}, s1[i]);
    sched.of(b2_) = BlockSchedule(3);
    for (int i = 0; i < 3; ++i) sched.of(b2_).set_start(OpId{i}, s2[i]);
    return sched;
  }
};

TEST_F(AllocationTest, HandComputedAuthorizationTables) {
  // p1 adds at 0, 1, 3 -> residues 0,1,0: A_p1 = [1,1,0]
  // p2 adds at 2, 5    -> residues 2,2:   A_p2 = [0,0,1]
  // mult at 0 (local to p2).
  const SystemSchedule sched = MakeSchedule({0, 1, 3}, {2, 5, 0});
  ASSERT_TRUE(ValidateSystemSchedule(model_, sched).ok());
  const Allocation alloc = ComputeAllocation(model_, sched);

  ASSERT_EQ(alloc.global.size(), 1u);
  const GlobalTypeAllocation& ga = alloc.global[0];
  EXPECT_EQ(ga.type, types_.add);
  EXPECT_EQ(ga.period, 3);
  ASSERT_EQ(ga.users.size(), 2u);
  EXPECT_EQ(ga.authorization[0], (std::vector<int>{1, 1, 0}));
  EXPECT_EQ(ga.authorization[1], (std::vector<int>{0, 0, 1}));
  EXPECT_EQ(ga.profile, (std::vector<int>{1, 1, 1}));
  EXPECT_EQ(ga.instances, 1);

  // Local: only p2's multiplier.
  EXPECT_EQ(alloc.local[p1_.index()][types_.mult.index()], 0);
  EXPECT_EQ(alloc.local[p2_.index()][types_.mult.index()], 1);
  // Adds are global: no local adders.
  EXPECT_EQ(alloc.local[p1_.index()][types_.add.index()], 0);
  EXPECT_EQ(alloc.local[p2_.index()][types_.add.index()], 0);

  // Area: 1 shared adder (1) + 1 local mult (4).
  EXPECT_EQ(alloc.TotalArea(model_.library()), 5);
  EXPECT_EQ(alloc.TotalInstances(types_.add), 1);
  EXPECT_EQ(alloc.TotalInstances(types_.mult), 1);

  EXPECT_TRUE(CheckAllocationCovers(model_, sched, alloc).ok());
}

TEST_F(AllocationTest, CollidingResiduesNeedTwoInstances) {
  // p1 add at 0 (residue 0) and p2 adds at 3 (residue 0): collision.
  const SystemSchedule sched = MakeSchedule({0, 1, 2}, {3, 4, 0});
  const Allocation alloc = ComputeAllocation(model_, sched);
  const GlobalTypeAllocation& ga = alloc.global[0];
  EXPECT_EQ(ga.profile[0], 2);  // residue 0 claimed by both
  EXPECT_EQ(ga.instances, 2);
}

TEST_F(AllocationTest, ConcurrentOpsRaiseAuthorization) {
  // Two p1 adds at the same step -> A_p1(residue) = 2.
  const SystemSchedule sched = MakeSchedule({0, 0, 1}, {2, 5, 0});
  const Allocation alloc = ComputeAllocation(model_, sched);
  const GlobalTypeAllocation& ga = alloc.global[0];
  EXPECT_EQ(ga.authorization[0], (std::vector<int>{2, 1, 0}));
}

TEST_F(AllocationTest, ModuloFoldUsesMaxNotSum) {
  // p1 adds at 0 and 3: same residue 0 but different absolute times of the
  // SAME activation -> max (=1), not sum (=2): the process needs only one
  // authorization slot (paper §3.2, Figure 1).
  const SystemSchedule sched = MakeSchedule({0, 3, 1}, {2, 5, 0});
  const Allocation alloc = ComputeAllocation(model_, sched);
  EXPECT_EQ(alloc.global[0].authorization[0], (std::vector<int>{1, 1, 0}));
}

TEST_F(AllocationTest, ValidateSystemScheduleCatchesBadBlock) {
  SystemSchedule sched = MakeSchedule({0, 1, 3}, {2, 5, 0});
  sched.of(b2_).set_start(OpId{2}, 5);  // mult ends at 7 > range 6
  EXPECT_FALSE(ValidateSystemSchedule(model_, sched).ok());
}

TEST_F(AllocationTest, CheckAllocationCoversDetectsUndersizedPool) {
  const SystemSchedule sched = MakeSchedule({0, 1, 3}, {2, 5, 0});
  Allocation alloc = ComputeAllocation(model_, sched);
  alloc.global[0].authorization[0] = {0, 0, 0};  // forge: p1 unauthorized
  EXPECT_FALSE(CheckAllocationCovers(model_, sched, alloc).ok());
}

TEST_F(AllocationTest, CheckAllocationCoversDetectsUndersizedLocal) {
  const SystemSchedule sched = MakeSchedule({0, 1, 3}, {2, 5, 0});
  Allocation alloc = ComputeAllocation(model_, sched);
  alloc.local[p2_.index()][types_.mult.index()] = 0;
  EXPECT_FALSE(CheckAllocationCovers(model_, sched, alloc).ok());
}

TEST_F(AllocationTest, NonPipelinedOccupancySpansResidues) {
  // Replace the setup with a non-pipelined 2-cycle unit shared globally:
  // an op issued at t occupies residues t and t+1.
  SystemModel m;
  const ResourceTypeId slow = m.library().AddSimple("slow", 2, 2);
  DataFlowGraph g;
  g.AddOp(slow, "s");
  ASSERT_TRUE(g.Validate().ok());
  const ProcessId p = m.AddProcess("p", 4);
  const BlockId b = m.AddBlock(p, "b", std::move(g), 4);
  m.MakeGlobal(slow, {p});
  m.SetPeriod(slow, 4);
  ASSERT_TRUE(m.Validate().ok());
  SystemSchedule sched;
  sched.blocks.resize(1);
  sched.of(b) = BlockSchedule(1);
  sched.of(b).set_start(OpId{0}, 1);
  const Allocation alloc = ComputeAllocation(m, sched);
  EXPECT_EQ(alloc.global[0].authorization[0], (std::vector<int>{0, 1, 1, 0}));
}

TEST_F(AllocationTest, GroupMemberWithoutUsageGetsNoAuthorizationRow) {
  // p2 has adds; rebuild p2 without adds and keep it in the group.
  SystemModel m;
  const PaperTypes t = AddPaperTypes(m.library());
  DataFlowGraph g1;
  g1.AddOp(t.add, "a");
  ASSERT_TRUE(g1.Validate().ok());
  const ProcessId q1 = m.AddProcess("q1", 4);
  const BlockId bb1 = m.AddBlock(q1, "b", std::move(g1), 4);
  DataFlowGraph g2;
  g2.AddOp(t.mult, "m");
  ASSERT_TRUE(g2.Validate().ok());
  const ProcessId q2 = m.AddProcess("q2", 4);
  const BlockId bb2 = m.AddBlock(q2, "b", std::move(g2), 4);
  m.MakeGlobal(t.add, {q1, q2});
  m.SetPeriod(t.add, 2);
  ASSERT_TRUE(m.Validate().ok());
  SystemSchedule sched;
  sched.blocks.resize(2);
  sched.of(bb1) = BlockSchedule(1);
  sched.of(bb1).set_start(OpId{0}, 0);
  sched.of(bb2) = BlockSchedule(1);
  sched.of(bb2).set_start(OpId{0}, 0);
  const Allocation alloc = ComputeAllocation(m, sched);
  ASSERT_EQ(alloc.global.size(), 1u);
  EXPECT_EQ(alloc.global[0].users, (std::vector<ProcessId>{q1}));
}

TEST_F(AllocationTest, PhaseRotatesAuthorizationTable) {
  model_.mutable_block(b1_).phase = 1;
  ASSERT_TRUE(model_.Validate().ok());
  // p1 add at relative 0 with phase 1 -> residue 1.
  const SystemSchedule sched = MakeSchedule({0, 1, 3}, {2, 5, 0});
  const Allocation alloc = ComputeAllocation(model_, sched);
  // relative 0,1,3 + phase 1 -> residues 1,2,1 => A_p1 = [0,1,1]
  EXPECT_EQ(alloc.global[0].authorization[0], (std::vector<int>{0, 1, 1}));
}

}  // namespace
}  // namespace mshls
