// List-scheduling baselines (paper §1.1: "common static scheduling
// algorithms ... assign a control step to each operation of a block").
//
// Two classic variants are provided:
//  * resource constrained: instance limits per type -> shortest schedule the
//    greedy priority rule finds (priority = least ALAP slack first);
//  * time constrained: deadline -> a small allocation meeting it, found by
//    starting from one instance per used type and growing the type with the
//    highest pressure until the deadline is met.
//
// They serve as the non-force-directed comparison point of bench A3 and as
// an independent feasibility oracle in tests.
#pragma once

#include <vector>

#include "common/status.h"
#include "model/system_model.h"
#include "sched/schedule.h"

namespace mshls {

struct ListScheduleResult {
  BlockSchedule schedule;
  int length = 0;
  /// Instance count per resource type id actually used at some step.
  std::vector<int> usage;
};

/// Schedules `block` under `limits` (instances per type id; types beyond the
/// vector are unconstrained). Delay/occupancy are taken from `lib`.
[[nodiscard]] StatusOr<ListScheduleResult> ListScheduleResourceConstrained(
    const Block& block, const ResourceLibrary& lib,
    const std::vector<int>& limits);

struct TimeConstrainedResult {
  BlockSchedule schedule;
  std::vector<int> allocation;  // instances per type id
  int length = 0;
};

/// Finds an allocation meeting block.time_range and the schedule that
/// proves it. Fails with kInfeasible only if even unconstrained ASAP does
/// not fit (i.e. model validation was skipped).
[[nodiscard]] StatusOr<TimeConstrainedResult> ListScheduleTimeConstrained(
    const Block& block, const ResourceLibrary& lib);

}  // namespace mshls
