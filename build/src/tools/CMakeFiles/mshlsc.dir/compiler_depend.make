# Empty compiler generated dependencies file for mshlsc.
# This may be replaced when dependencies are built.
