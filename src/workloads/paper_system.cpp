#include "workloads/paper_system.h"

#include <cassert>

namespace mshls {

PaperSystem BuildPaperSystem(const PaperSystemOptions& options) {
  PaperSystem sys;
  sys.types = AddPaperTypes(sys.model.library());

  const int ewf_deadline[3] = {options.ewf_deadline_a, options.ewf_deadline_a,
                               options.ewf_deadline_b};
  for (int i = 0; i < 3; ++i) {
    const std::string name = "ewf" + std::to_string(i + 1);
    sys.ewf[i] = sys.model.AddProcess(name, ewf_deadline[i]);
    sys.model.AddBlock(sys.ewf[i], name + "_main", BuildEwf(sys.types),
                       ewf_deadline[i]);
  }
  for (int i = 0; i < 2; ++i) {
    const std::string name = "diffeq" + std::to_string(i + 1);
    sys.diffeq[i] = sys.model.AddProcess(name, options.diffeq_deadline);
    sys.model.AddBlock(sys.diffeq[i], name + "_main", BuildDiffeq(sys.types),
                       options.diffeq_deadline);
  }

  if (options.make_global) {
    const std::vector<ProcessId> all = {sys.ewf[0], sys.ewf[1], sys.ewf[2],
                                        sys.diffeq[0], sys.diffeq[1]};
    sys.model.MakeGlobal(sys.types.add, all);
    sys.model.MakeGlobal(sys.types.mult, all);
    sys.model.MakeGlobal(sys.types.sub, {sys.diffeq[0], sys.diffeq[1]});
    sys.model.SetPeriod(sys.types.add, options.period);
    sys.model.SetPeriod(sys.types.mult, options.period);
    sys.model.SetPeriod(sys.types.sub, options.period);
  }

  const Status s = sys.model.Validate();
  assert(s.ok());
  (void)s;
  return sys;
}

}  // namespace mshls
