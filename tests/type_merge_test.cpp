#include <gtest/gtest.h>

#include "model/type_merge.h"
#include "modulo/baseline.h"
#include "modulo/coupled_scheduler.h"
#include "workloads/benchmarks.h"
#include "workloads/paper_system.h"

namespace mshls {
namespace {

class TypeMergeTest : public ::testing::Test {
 protected:
  SystemModel model_;
  PaperTypes types_ = AddPaperTypes(model_.library());

  void AddMixedProcess(const std::string& name, int range) {
    DataFlowGraph g;
    const OpId a = g.AddOp(types_.add, name + "_a");
    const OpId s = g.AddOp(types_.sub, name + "_s");
    const OpId m = g.AddOp(types_.mult, name + "_m");
    g.AddEdge(a, m);
    g.AddEdge(s, m);
    ASSERT_TRUE(g.Validate().ok());
    const ProcessId p = model_.AddProcess(name, range);
    model_.AddBlock(p, name + "_b", std::move(g), range);
  }
};

TEST_F(TypeMergeTest, RetargetsAllOps) {
  AddMixedProcess("p1", 8);
  ASSERT_TRUE(model_.Validate().ok());
  const ResourceTypeId sources[] = {types_.add, types_.sub};
  auto alu = MergeTypes(model_, sources, "alu", 1);
  ASSERT_TRUE(alu.ok()) << alu.status().ToString();
  int alu_ops = 0;
  for (const Operation& op : model_.block(BlockId{0}).graph.ops()) {
    EXPECT_NE(op.type, types_.add);
    EXPECT_NE(op.type, types_.sub);
    if (op.type == alu.value()) ++alu_ops;
  }
  EXPECT_EQ(alu_ops, 2);
  // Graph structure survives.
  EXPECT_EQ(model_.block(BlockId{0}).graph.edge_count(), 2u);
  EXPECT_EQ(model_.library().type(alu.value()).name, "alu");
  EXPECT_EQ(model_.library().type(alu.value()).delay, 1);
}

TEST_F(TypeMergeTest, RejectsIncompatibleTimings) {
  AddMixedProcess("p1", 8);
  const ResourceTypeId sources[] = {types_.add, types_.mult};  // delay 1 vs 2
  auto alu = MergeTypes(model_, sources, "alu", 2);
  ASSERT_FALSE(alu.ok());
  EXPECT_EQ(alu.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TypeMergeTest, RejectsDuplicateName) {
  AddMixedProcess("p1", 8);
  const ResourceTypeId sources[] = {types_.add, types_.sub};
  auto bad = MergeTypes(model_, sources, "mult", 1);
  ASSERT_FALSE(bad.ok());
}

TEST_F(TypeMergeTest, RejectsSingleSource) {
  AddMixedProcess("p1", 8);
  const ResourceTypeId sources[] = {types_.add};
  EXPECT_FALSE(MergeTypes(model_, sources, "alu", 1).ok());
}

TEST_F(TypeMergeTest, MergedTypeSchedulesAndShares) {
  AddMixedProcess("p1", 8);
  AddMixedProcess("p2", 8);
  ASSERT_TRUE(model_.Validate().ok());
  const ResourceTypeId sources[] = {types_.add, types_.sub};
  auto alu = MergeTypes(model_, sources, "alu", 1);
  ASSERT_TRUE(alu.ok());
  model_.MakeGlobal(alu.value(),
                    {model_.processes()[0].id, model_.processes()[1].id});
  model_.SetPeriod(alu.value(), 4);
  ASSERT_TRUE(model_.Validate().ok());
  CoupledScheduler scheduler(model_, CoupledParams{});
  auto result = scheduler.Run();
  ASSERT_TRUE(result.ok());
  const GlobalTypeAllocation* pool =
      result.value().allocation.FindGlobal(alu.value());
  ASSERT_NE(pool, nullptr);
  // Four ALU-ops across 2 processes in 8 steps: one shared ALU suffices.
  EXPECT_EQ(pool->instances, 1);
}

TEST_F(TypeMergeTest, AluMergeOnPaperSystemSavesArea) {
  // The paper counts adders and subtracters separately (4 + 1 = 5 units
  // of area 1). Merging add+sub into one ALU class lets the subtraction
  // traffic reuse adder slots: the merged pool needs at most 5 and
  // typically fewer units.
  PaperSystem sys = BuildPaperSystem();
  const ResourceTypeId sources[] = {sys.types.add, sys.types.sub};
  auto alu = MergeTypes(sys.model, sources, "alu", 1);
  ASSERT_TRUE(alu.ok()) << alu.status().ToString();
  std::vector<ProcessId> all;
  for (const Process& p : sys.model.processes()) all.push_back(p.id);
  sys.model.MakeGlobal(alu.value(), all);
  sys.model.SetPeriod(alu.value(), 5);
  ASSERT_TRUE(sys.model.Validate().ok());
  CoupledScheduler scheduler(sys.model, CoupledParams{});
  auto result = scheduler.Run();
  ASSERT_TRUE(result.ok());
  const int alus =
      result.value().allocation.FindGlobal(alu.value())->instances;
  EXPECT_LE(alus, 5);
  EXPECT_GE(alus, 4);  // the add traffic alone needs 4
  const int area = result.value().allocation.TotalArea(sys.model.library());
  EXPECT_LE(area, 17);
}

}  // namespace
}  // namespace mshls
