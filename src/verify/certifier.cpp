#include "verify/certifier.h"

#include <algorithm>
#include <cstdint>

#include "common/math_util.h"

namespace mshls {
namespace {

/// Eq. 1 extended to arbitrary int64 absolute times.
int FoldResidue(std::int64_t t, int lambda) {
  return static_cast<int>(FlooredMod(t, lambda));
}

/// Collection context: caps the violation list and tracks check counters.
struct Ctx {
  const SystemModel& model;
  const CertifierOptions& options;
  CertificateReport report;
  bool full = false;

  void Add(Violation v) {
    if (full) return;
    report.violations.push_back(std::move(v));
    if (options.max_violations > 0 &&
        static_cast<int>(report.violations.size()) >= options.max_violations)
      full = true;
  }
};

Violation Make(ViolationKind kind, std::string detail) {
  Violation v;
  v.kind = kind;
  v.detail = std::move(detail);
  return v;
}

/// Occupancy of `type` over the steps of `b`, derived directly from op
/// starts and the library DII — intentionally not sched::OccupancyProfile.
/// Out-of-range starts are clamped into the window (they are reported
/// separately as range violations).
std::vector<int> DeriveOccupancy(const Block& b, const ResourceLibrary& lib,
                                 const BlockSchedule& schedule,
                                 ResourceTypeId type) {
  std::vector<int> occ(static_cast<std::size_t>(b.time_range), 0);
  if (schedule.size() != b.graph.op_count()) return occ;
  const int dii = lib.type(type).dii;
  for (const Operation& op : b.graph.ops()) {
    if (op.type != type) continue;
    const int s = schedule.start(op.id);
    if (s < 0) continue;
    for (int t = std::max(s, 0); t < s + dii && t < b.time_range; ++t)
      ++occ[static_cast<std::size_t>(t)];
  }
  return occ;
}

// ------------------------------------------------------------ schedule --

void CheckBlockSchedules(Ctx& ctx, const SystemSchedule& schedule,
                         std::vector<char>& block_usable) {
  const SystemModel& model = ctx.model;
  for (const Block& b : model.blocks()) {
    const BlockSchedule& s = schedule.of(b.id);
    if (s.size() != b.graph.op_count()) {
      Violation v = Make(ViolationKind::kIncompleteSchedule,
                         "schedule has " + std::to_string(s.size()) +
                             " slots for " +
                             std::to_string(b.graph.op_count()) + " ops");
      v.block = b.id;
      v.process = b.process;
      ctx.Add(std::move(v));
      block_usable[b.id.index()] = 0;
      continue;
    }
    const Process& p = model.process(b.process);
    for (const Operation& op : b.graph.ops()) {
      ++ctx.report.stats.ops_checked;
      const int start = s.start(op.id);
      const int delay = model.library().type(op.type).delay;
      if (start < 0) {
        Violation v = Make(ViolationKind::kIncompleteSchedule,
                           "op " + std::to_string(op.id.value()) +
                               " is unscheduled");
        v.block = b.id;
        v.op = op.id;
        v.process = b.process;
        v.type = op.type;
        ctx.Add(std::move(v));
        continue;
      }
      if (start + delay > b.time_range) {
        Violation v = Make(ViolationKind::kRangeViolation,
                           "op " + std::to_string(op.id.value()) +
                               " starts at " + std::to_string(start) +
                               " and finishes after time range " +
                               std::to_string(b.time_range));
        v.block = b.id;
        v.op = op.id;
        v.process = b.process;
        v.type = op.type;
        v.cycle = start;
        ctx.Add(std::move(v));
      }
      if (p.deadline > 0 && start + delay > p.deadline) {
        Violation v = Make(ViolationKind::kDeadlineViolation,
                           "op " + std::to_string(op.id.value()) +
                               " finishes at " +
                               std::to_string(start + delay) +
                               " past deadline " +
                               std::to_string(p.deadline));
        v.block = b.id;
        v.op = op.id;
        v.process = b.process;
        v.cycle = start;
        ctx.Add(std::move(v));
      }
    }
    for (const Edge& e : b.graph.edges()) {
      ++ctx.report.stats.edges_checked;
      const int from = s.start(e.from);
      const int to = s.start(e.to);
      if (from < 0 || to < 0) continue;  // already reported as incomplete
      const int latency = model.library().type(b.graph.op(e.from).type).delay;
      if (to < from + latency) {
        Violation v = Make(ViolationKind::kDependenceViolation,
                           "edge " + std::to_string(e.from.value()) + " -> " +
                               std::to_string(e.to.value()) + ": consumer at " +
                               std::to_string(to) +
                               " before producer result at " +
                               std::to_string(from + latency));
        v.block = b.id;
        v.op = e.to;
        v.process = b.process;
        v.cycle = to;
        ctx.Add(std::move(v));
      }
    }
  }
}

// ---------------------------------------------------------- allocation --

/// Per-pool structural validity computed up front so the deep checks never
/// index a corrupted table.
struct PoolState {
  bool usable = false;
};

void CheckAllocationStructure(Ctx& ctx, const Allocation& allocation,
                              std::vector<PoolState>& pools) {
  const SystemModel& model = ctx.model;
  if (allocation.local.size() != model.process_count()) {
    ctx.Add(Make(ViolationKind::kMalformedArtifact,
                 "local allocation table has " +
                     std::to_string(allocation.local.size()) +
                     " process rows for " +
                     std::to_string(model.process_count()) + " processes"));
  } else {
    for (std::size_t p = 0; p < allocation.local.size(); ++p) {
      if (allocation.local[p].size() != model.library().size()) {
        Violation v = Make(ViolationKind::kMalformedArtifact,
                           "local allocation row has " +
                               std::to_string(allocation.local[p].size()) +
                               " type slots for " +
                               std::to_string(model.library().size()) +
                               " types");
        v.process = ProcessId{static_cast<int>(p)};
        ctx.Add(std::move(v));
      }
    }
  }

  pools.assign(allocation.global.size(), PoolState{});
  for (std::size_t i = 0; i < allocation.global.size(); ++i) {
    const GlobalTypeAllocation& ga = allocation.global[i];
    const bool known_type = ga.type.valid() &&
                            ga.type.index() < model.library().size();
    if (!known_type) {
      ctx.Add(Make(ViolationKind::kMalformedArtifact,
                   "pool references unknown resource type " +
                       std::to_string(ga.type.value())));
      continue;
    }
    const TypeAssignment& a = model.assignment(ga.type);
    if (a.scope != AssignmentScope::kGlobal) {
      Violation v = Make(ViolationKind::kMalformedArtifact,
                         "pool exists for a type the model assigns locally");
      v.type = ga.type;
      ctx.Add(std::move(v));
      continue;
    }
    if (ga.period < 1 || ga.period != a.period) {
      Violation v = Make(ViolationKind::kPeriodMismatch,
                         "pool period " + std::to_string(ga.period) +
                             " disagrees with declared lambda " +
                             std::to_string(a.period));
      v.type = ga.type;
      ctx.Add(std::move(v));
      // The declared period stays the reference for the residue checks;
      // a pool with a foreign period cannot be certified further.
      continue;
    }
    bool shape_ok = ga.authorization.size() == ga.users.size() &&
                    ga.profile.size() == static_cast<std::size_t>(ga.period);
    for (const std::vector<int>& row : ga.authorization)
      shape_ok = shape_ok && row.size() == static_cast<std::size_t>(ga.period);
    for (ProcessId u : ga.users)
      shape_ok = shape_ok && u.valid() && u.index() < model.process_count();
    if (!shape_ok) {
      Violation v = Make(ViolationKind::kMalformedArtifact,
                         "authorization tables do not match period " +
                             std::to_string(ga.period) + " x " +
                             std::to_string(ga.users.size()) + " users");
      v.type = ga.type;
      ctx.Add(std::move(v));
      continue;
    }
    pools[i].usable = true;
  }
}

/// Pool serving (process, type) in this allocation, or nullptr — the
/// routing rule: a process is pool-served iff it appears in the user list.
const GlobalTypeAllocation* PoolFor(const Allocation& allocation,
                                    const std::vector<PoolState>& pools,
                                    ProcessId process, ResourceTypeId type,
                                    std::size_t* user_index = nullptr,
                                    bool* found_unusable = nullptr) {
  for (std::size_t i = 0; i < allocation.global.size(); ++i) {
    const GlobalTypeAllocation& ga = allocation.global[i];
    if (ga.type != type) continue;
    for (std::size_t u = 0; u < ga.users.size(); ++u) {
      if (ga.users[u] == process) {
        if (!pools[i].usable) {
          if (found_unusable != nullptr) *found_unusable = true;
          return nullptr;
        }
        if (user_index != nullptr) *user_index = u;
        return &ga;
      }
    }
  }
  return nullptr;
}

void CheckResourceCover(Ctx& ctx, const SystemSchedule& schedule,
                        const Allocation& allocation,
                        const std::vector<PoolState>& pools,
                        const std::vector<char>& block_usable) {
  const SystemModel& model = ctx.model;
  const ResourceLibrary& lib = model.library();
  const bool local_shape_ok =
      allocation.local.size() == model.process_count() &&
      std::all_of(allocation.local.begin(), allocation.local.end(),
                  [&](const std::vector<int>& row) {
                    return row.size() == lib.size();
                  });

  for (const Process& p : model.processes()) {
    for (const ResourceType& t : lib.types()) {
      std::size_t user = 0;
      bool pool_unusable = false;
      const GlobalTypeAllocation* pool =
          PoolFor(allocation, pools, p.id, t.id, &user, &pool_unusable);
      if (pool_unusable) continue;  // already reported as malformed

      for (BlockId bid : p.blocks) {
        if (!block_usable[bid.index()]) continue;
        const Block& b = model.block(bid);
        const std::vector<int> occ =
            DeriveOccupancy(b, lib, schedule.of(bid), t.id);

        if (pool != nullptr) {
          // Eq. 1: every occupied step must fit the process' authorization
          // at its residue class.
          for (int cycle = 0; cycle < b.time_range; ++cycle) {
            const int demand = occ[static_cast<std::size_t>(cycle)];
            if (demand == 0) continue;
            ++ctx.report.stats.cycles_checked;
            const int tau = FoldResidue(
                static_cast<std::int64_t>(b.phase) + cycle, pool->period);
            const int granted =
                pool->authorization[user][static_cast<std::size_t>(tau)];
            if (demand > granted) {
              Violation v = Make(
                  ViolationKind::kAuthorizationShortfall,
                  "demand " + std::to_string(demand) + " exceeds A_p(" +
                      std::to_string(tau) + ") = " + std::to_string(granted));
              v.block = bid;
              v.process = p.id;
              v.type = t.id;
              v.cycle = cycle;
              v.residue = tau;
              ctx.Add(std::move(v));
            }
          }
          continue;
        }

        // Local cover (also the route for demoted / baseline allocations
        // of model-global types: over-provisioning locally is safe).
        const int granted =
            local_shape_ok ? allocation.local[p.id.index()][t.id.index()] : 0;
        for (int cycle = 0; cycle < b.time_range; ++cycle) {
          const int demand = occ[static_cast<std::size_t>(cycle)];
          if (demand == 0) continue;
          ++ctx.report.stats.cycles_checked;
          if (demand > granted) {
            Violation v = Make(ViolationKind::kLocalOverSubscription,
                               "demand " + std::to_string(demand) +
                                   " exceeds the " + std::to_string(granted) +
                                   " local instance(s)");
            v.block = bid;
            v.process = p.id;
            v.type = t.id;
            v.cycle = cycle;
            ctx.Add(std::move(v));
            break;  // one report per (block, type) is enough
          }
        }
      }
    }
  }

  // Eq. 1, pool side: the authorization sum must fit the built instances
  // at every residue, and the stored group profile must be that sum.
  for (std::size_t i = 0; i < allocation.global.size(); ++i) {
    if (!pools[i].usable) continue;
    const GlobalTypeAllocation& ga = allocation.global[i];
    for (int tau = 0; tau < ga.period; ++tau) {
      ++ctx.report.stats.residues_checked;
      int sum = 0;
      for (const std::vector<int>& row : ga.authorization)
        sum += row[static_cast<std::size_t>(tau)];
      if (sum > ga.instances) {
        Violation v = Make(ViolationKind::kResidueOverSubscription,
                           "authorizations grant " + std::to_string(sum) +
                               " of " + std::to_string(ga.instances) +
                               " pool instance(s)");
        v.type = ga.type;
        v.residue = tau;
        ctx.Add(std::move(v));
      }
      if (ga.profile[static_cast<std::size_t>(tau)] != sum) {
        Violation v = Make(ViolationKind::kMalformedArtifact,
                           "group profile " +
                               std::to_string(
                                   ga.profile[static_cast<std::size_t>(tau)]) +
                               " is not the authorization sum " +
                               std::to_string(sum));
        v.type = ga.type;
        v.residue = tau;
        ctx.Add(std::move(v));
      }
    }
  }
}

// ---------------------------------------------------------------- grid --

void CheckGrid(Ctx& ctx, const SystemSchedule& schedule,
               const Allocation& allocation,
               const std::vector<PoolState>& pools,
               const std::vector<char>& block_usable) {
  const SystemModel& model = ctx.model;
  for (const Process& p : model.processes()) {
    // The grid constraint (eq. 3) binds exactly the processes that access a
    // pool in *this* allocation: a demoted or pure-local result has no
    // residue-mapped hardware, so its blocks may start anywhere. Usable
    // pools carry the declared lambda_g (a foreign period was already
    // reported as kPeriodMismatch and excluded).
    std::vector<std::int64_t> periods;
    for (std::size_t i = 0; i < allocation.global.size(); ++i) {
      if (!pools[i].usable) continue;
      const GlobalTypeAllocation& ga = allocation.global[i];
      if (std::find(ga.users.begin(), ga.users.end(), p.id) != ga.users.end())
        periods.push_back(ga.period);
    }
    if (periods.empty()) continue;
    const StatusOr<std::int64_t> grid_or =
        CheckedLcmOf(std::span<const std::int64_t>(periods));
    if (!grid_or.ok()) {
      Violation v =
          Make(ViolationKind::kGridMisalignment, grid_or.status().message());
      v.process = p.id;
      ctx.Add(std::move(v));
      continue;
    }
    const std::int64_t grid = grid_or.value();

    for (BlockId bid : p.blocks) {
      const Block& b = model.block(bid);
      // Eq. 3: activations repeat on the grid, so the grid must tile the
      // activation window and the start residue must lie inside it.
      if (grid > 1 && b.time_range % grid != 0) {
        Violation v = Make(ViolationKind::kGridMisalignment,
                           "grid spacing " + std::to_string(grid) +
                               " does not divide time range " +
                               std::to_string(b.time_range));
        v.block = bid;
        v.process = p.id;
        ctx.Add(std::move(v));
      }
      if (b.phase < 0 || (grid > 1 && b.phase >= grid)) {
        Violation v = Make(ViolationKind::kGridMisalignment,
                           "phase " + std::to_string(b.phase) +
                               " outside grid spacing " +
                               std::to_string(grid));
        v.block = bid;
        v.process = p.id;
        ctx.Add(std::move(v));
      }
    }

    // Eq. 2: shifting any block by k * grid must leave every pool residue
    // profile bit-identical. Certified numerically against the *pool's*
    // period — a corrupted period breaks the congruence and is caught here
    // independently of the structural period check.
    for (std::size_t i = 0; i < allocation.global.size(); ++i) {
      if (!pools[i].usable) continue;
      const GlobalTypeAllocation& ga = allocation.global[i];
      if (std::find(ga.users.begin(), ga.users.end(), p.id) == ga.users.end())
        continue;
      for (BlockId bid : p.blocks) {
        if (!block_usable[bid.index()]) continue;
        const Block& b = model.block(bid);
        const std::vector<int> occ =
            DeriveOccupancy(b, model.library(), schedule.of(bid), ga.type);
        for (int k = 1; k <= ctx.options.shift_multiples; ++k) {
          ++ctx.report.stats.shifts_checked;
          for (int t = 0; t < b.time_range; ++t) {
            if (occ[static_cast<std::size_t>(t)] == 0) continue;
            const std::int64_t base =
                static_cast<std::int64_t>(b.phase) + t;
            const int tau0 = FoldResidue(base, ga.period);
            const int tau_k = FoldResidue(base + k * grid, ga.period);
            if (tau_k != tau0) {
              Violation v = Make(
                  ViolationKind::kGridShiftVariance,
                  "shift by " + std::to_string(k) + " * " +
                      std::to_string(grid) + " moves step " +
                      std::to_string(t) + " from residue " +
                      std::to_string(tau0) + " to " + std::to_string(tau_k));
              v.block = bid;
              v.process = p.id;
              v.type = ga.type;
              v.cycle = t;
              v.residue = tau0;
              ctx.Add(std::move(v));
              break;  // one step per (block, pool, k) is enough
            }
          }
        }
      }
    }
  }
}

// ------------------------------------------------------------- binding --

void CheckBinding(Ctx& ctx, const SystemSchedule& schedule,
                  const Allocation& allocation,
                  const std::vector<PoolState>& pools,
                  const std::vector<char>& block_usable,
                  const SystemBinding& binding) {
  const SystemModel& model = ctx.model;
  const ResourceLibrary& lib = model.library();
  if (binding.op_instance.size() != model.block_count()) {
    ctx.Add(Make(ViolationKind::kBindingIncomplete,
                 "binding has " + std::to_string(binding.op_instance.size()) +
                     " block rows for " +
                     std::to_string(model.block_count()) + " blocks"));
    return;
  }
  const bool local_shape_ok =
      allocation.local.size() == model.process_count() &&
      std::all_of(allocation.local.begin(), allocation.local.end(),
                  [&](const std::vector<int>& row) {
                    return row.size() == lib.size();
                  });

  for (const Block& b : model.blocks()) {
    if (!block_usable[b.id.index()]) continue;
    const BlockSchedule& sched = schedule.of(b.id);
    const std::vector<InstanceId>& per_op = binding.op_instance[b.id.index()];
    if (per_op.size() != b.graph.op_count()) {
      Violation v = Make(ViolationKind::kBindingIncomplete,
                         "binding row has " + std::to_string(per_op.size()) +
                             " slots for " +
                             std::to_string(b.graph.op_count()) + " ops");
      v.block = b.id;
      ctx.Add(std::move(v));
      continue;
    }
    // Claimed (instance, step) cells of this block, re-derived from starts.
    std::vector<std::vector<char>> busy(
        binding.instances.size(),
        std::vector<char>(static_cast<std::size_t>(b.time_range), 0));

    for (const Operation& op : b.graph.ops()) {
      ++ctx.report.stats.bindings_checked;
      const InstanceId inst = per_op[op.id.index()];
      if (!inst.valid() || inst.index() >= binding.instances.size()) {
        Violation v = Make(ViolationKind::kBindingIncomplete,
                           "op " + std::to_string(op.id.value()) +
                               " is unbound or bound out of table");
        v.block = b.id;
        v.op = op.id;
        v.process = b.process;
        v.type = op.type;
        ctx.Add(std::move(v));
        continue;
      }
      const InstanceInfo& info = binding.instances[inst.index()];
      if (info.type != op.type) {
        Violation v = Make(ViolationKind::kBindingTypeMismatch,
                           "op of type " + std::to_string(op.type.value()) +
                               " bound to instance '" + info.name + "'");
        v.block = b.id;
        v.op = op.id;
        v.process = b.process;
        v.type = op.type;
        v.instance = inst;
        ctx.Add(std::move(v));
        continue;
      }
      const int s = sched.start(op.id);
      if (s < 0) continue;  // reported as incomplete already
      const int dii = lib.type(op.type).dii;

      for (int k = 0; k < dii && s + k < b.time_range; ++k) {
        if (s + k < 0) continue;
        auto cell = busy[inst.index()].begin() + (s + k);
        if (*cell != 0) {
          Violation v = Make(ViolationKind::kBindingDoubleBooking,
                             "instance '" + info.name +
                                 "' claimed twice at step " +
                                 std::to_string(s + k));
          v.block = b.id;
          v.op = op.id;
          v.process = b.process;
          v.type = op.type;
          v.instance = inst;
          v.cycle = s + k;
          ctx.Add(std::move(v));
          break;
        }
        *cell = 1;
      }

      if (!info.global) {
        const int count =
            local_shape_ok
                ? allocation.local[b.process.index()][op.type.index()]
                : 0;
        if (info.owner != b.process || info.local_index < 0 ||
            info.local_index >= count) {
          Violation v = Make(ViolationKind::kBindingOwnership,
                             "local instance '" + info.name +
                                 "' is not owned by the block's process");
          v.block = b.id;
          v.op = op.id;
          v.process = b.process;
          v.type = op.type;
          v.instance = inst;
          ctx.Add(std::move(v));
        }
        continue;
      }

      // Pool instance: the index must fall into the block process' prefix
      // entitlement [sum_{v<u} A_v(tau), sum_{v<=u} A_v(tau)) at every
      // residue the issue spans — re-derived from the authorization rows.
      std::size_t user = 0;
      bool pool_unusable = false;
      const GlobalTypeAllocation* pool = PoolFor(
          allocation, pools, b.process, op.type, &user, &pool_unusable);
      if (pool_unusable) continue;
      if (pool == nullptr) {
        Violation v = Make(ViolationKind::kBindingOwnership,
                           "pool instance '" + info.name +
                               "' used by a process outside the pool");
        v.block = b.id;
        v.op = op.id;
        v.process = b.process;
        v.type = op.type;
        v.instance = inst;
        ctx.Add(std::move(v));
        continue;
      }
      for (int k = 0; k < dii; ++k) {
        const int tau = FoldResidue(
            static_cast<std::int64_t>(b.phase) + s + k, pool->period);
        int first = 0;
        for (std::size_t v = 0; v < user; ++v)
          first += pool->authorization[v][static_cast<std::size_t>(tau)];
        const int count =
            pool->authorization[user][static_cast<std::size_t>(tau)];
        if (info.local_index < first || info.local_index >= first + count ||
            info.local_index >= pool->instances) {
          Violation v = Make(ViolationKind::kBindingEntitlement,
                             "pool instance '" + info.name +
                                 "' outside entitlement [" +
                                 std::to_string(first) + ", " +
                                 std::to_string(first + count) +
                                 ") at residue " + std::to_string(tau));
          v.block = b.id;
          v.op = op.id;
          v.process = b.process;
          v.type = op.type;
          v.instance = inst;
          v.cycle = s + k;
          v.residue = tau;
          ctx.Add(std::move(v));
          break;
        }
      }
    }
  }
}

}  // namespace

const char* ViolationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kIncompleteSchedule: return "incomplete-schedule";
    case ViolationKind::kRangeViolation: return "range-violation";
    case ViolationKind::kDependenceViolation: return "dependence-violation";
    case ViolationKind::kDeadlineViolation: return "deadline-violation";
    case ViolationKind::kLocalOverSubscription:
      return "local-oversubscription";
    case ViolationKind::kAuthorizationShortfall:
      return "authorization-shortfall";
    case ViolationKind::kResidueOverSubscription:
      return "residue-oversubscription";
    case ViolationKind::kPeriodMismatch: return "period-mismatch";
    case ViolationKind::kGridMisalignment: return "grid-misalignment";
    case ViolationKind::kGridShiftVariance: return "grid-shift-variance";
    case ViolationKind::kBindingIncomplete: return "binding-incomplete";
    case ViolationKind::kBindingTypeMismatch: return "binding-type-mismatch";
    case ViolationKind::kBindingOwnership: return "binding-ownership";
    case ViolationKind::kBindingEntitlement: return "binding-entitlement";
    case ViolationKind::kBindingDoubleBooking:
      return "binding-double-booking";
    case ViolationKind::kMalformedArtifact: return "malformed-artifact";
  }
  return "unknown";
}

std::string Violation::ToString(const SystemModel& model) const {
  std::string out = ViolationKindName(kind);
  if (process.valid() && process.index() < model.process_count())
    out += " process '" + model.process(process).name + "'";
  if (block.valid() && block.index() < model.block_count())
    out += " block '" + model.block(block).name + "'";
  if (op.valid()) out += " op " + std::to_string(op.value());
  if (type.valid() && type.index() < model.library().size())
    out += " type '" + model.library().type(type).name + "'";
  if (cycle >= 0) out += " cycle " + std::to_string(cycle);
  if (residue >= 0) out += " residue " + std::to_string(residue);
  out += ": " + detail;
  return out;
}

bool CertificateReport::Has(ViolationKind kind) const {
  return std::any_of(violations.begin(), violations.end(),
                     [kind](const Violation& v) { return v.kind == kind; });
}

std::string CertificateReport::Summary() const {
  if (ok())
    return "clean (" + std::to_string(stats.Total()) + " checks)";
  std::string out = std::to_string(violations.size()) + " violation(s), first " +
                    std::string(ViolationKindName(violations.front().kind)) +
                    ": " + violations.front().detail;
  return out;
}

std::string CertificateReport::ToString(const SystemModel& model) const {
  if (ok()) return "certificate: " + Summary() + "\n";
  std::string out = "certificate: " + std::to_string(violations.size()) +
                    " violation(s) in " + std::to_string(stats.Total()) +
                    " checks\n";
  for (const Violation& v : violations)
    out += "  " + v.ToString(model) + "\n";
  return out;
}

CertificateReport CertifySchedule(const SystemModel& model,
                                  const SystemSchedule& schedule,
                                  const Allocation& allocation,
                                  const SystemBinding* binding,
                                  const CertifierOptions& options) {
  Ctx ctx{model, options, {}, false};
  if (schedule.blocks.size() != model.block_count()) {
    ctx.Add(Make(ViolationKind::kIncompleteSchedule,
                 "system schedule has " +
                     std::to_string(schedule.blocks.size()) +
                     " blocks for " + std::to_string(model.block_count())));
    return std::move(ctx.report);
  }
  std::vector<char> block_usable(model.block_count(), 1);
  CheckBlockSchedules(ctx, schedule, block_usable);

  std::vector<PoolState> pools;
  CheckAllocationStructure(ctx, allocation, pools);
  CheckResourceCover(ctx, schedule, allocation, pools, block_usable);
  CheckGrid(ctx, schedule, allocation, pools, block_usable);
  if (binding != nullptr)
    CheckBinding(ctx, schedule, allocation, pools, block_usable, *binding);
  return std::move(ctx.report);
}

CertificateReport CertifyResult(const SystemModel& model,
                                const CoupledResult& result,
                                const SystemBinding* binding,
                                const CertifierOptions& options) {
  return CertifySchedule(model, result.schedule, result.allocation, binding,
                         options);
}

}  // namespace mshls
