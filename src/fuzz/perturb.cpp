#include "fuzz/perturb.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <utility>

#include "bind/binding.h"
#include "common/rng.h"
#include "engine/thread_pool.h"
#include "frontend/emitter.h"
#include "model/model_spec.h"
#include "verify/certifier.h"

namespace mshls {
namespace {

bool ProcessUsesType(const SpecProcess& process, int type) {
  for (const SpecBlock& b : process.blocks)
    for (const SpecOp& o : b.ops)
      if (o.type == type) return true;
  return false;
}

std::string UniqueProcessName(const ModelSpec& spec, std::uint64_t seed) {
  std::string name = "fz_join" + std::to_string(seed % 1000);
  auto taken = [&](const std::string& n) {
    for (const SpecProcess& p : spec.processes)
      if (p.name == n) return true;
    return false;
  };
  while (taken(name)) name += "x";
  return name;
}

/// Kinds the model's structure admits, with crude weights (repeats).
std::vector<DeltaKind> AdmissibleKinds(const ModelSpec& spec) {
  std::vector<DeltaKind> kinds;
  kinds.insert(kinds.end(), 3, DeltaKind::kSetDeadline);
  kinds.insert(kinds.end(), 3, DeltaKind::kRetimeType);
  kinds.insert(kinds.end(), 2, DeltaKind::kAddProcess);
  if (!spec.shares.empty()) {
    kinds.insert(kinds.end(), 2, DeltaKind::kSetPeriod);
    kinds.insert(kinds.end(), 2, DeltaKind::kResizeGroup);
  }
  if (spec.processes.size() >= 2)
    kinds.insert(kinds.end(), 2, DeltaKind::kRemoveProcess);
  return kinds;
}

DeltaOp DrawOp(const ModelSpec& spec, Rng& rng) {
  const std::vector<DeltaKind> kinds = AdmissibleKinds(spec);
  DeltaOp op;
  op.kind = kinds[rng.NextBounded(kinds.size())];
  switch (op.kind) {
    case DeltaKind::kSetDeadline: {
      const SpecProcess& p =
          spec.processes[rng.NextBounded(spec.processes.size())];
      int max_range = 1;
      for (const SpecBlock& b : p.blocks)
        max_range = std::max(max_range, b.time_range);
      op.process = p.name;
      // Around the block range: sometimes tight (stresses the ladder and
      // the typed-rejection path), mostly survivable.
      op.deadline = std::max(
          1, max_range - 1 + static_cast<int>(rng.NextBounded(5)));
      break;
    }
    case DeltaKind::kRetimeType: {
      const SpecType& t = spec.types[rng.NextBounded(spec.types.size())];
      op.type = t.name;
      int delay = 1 + static_cast<int>(rng.NextBounded(3));
      if (delay == t.delay) delay = t.delay == 3 ? 1 : t.delay + 1;
      op.delay = delay;
      break;
    }
    case DeltaKind::kSetPeriod: {
      const SpecShare& s = spec.shares[rng.NextBounded(spec.shares.size())];
      op.type = spec.types[static_cast<std::size_t>(s.type)].name;
      int period = 1 + static_cast<int>(rng.NextBounded(4));
      if (period == s.period) period = s.period == 1 ? 2 : 1;
      op.period = period;
      break;
    }
    case DeltaKind::kResizeGroup: {
      const SpecShare& s = spec.shares[rng.NextBounded(spec.shares.size())];
      op.type = spec.types[static_cast<std::size_t>(s.type)].name;
      std::vector<int> members = s.processes;
      // Grow toward an unlisted user of the type when one exists and a
      // coin lands that way; otherwise shed a member (possibly demoting
      // the type to local when only one was left).
      std::vector<int> joinable;
      for (std::size_t p = 0; p < spec.processes.size(); ++p)
        if (std::find(members.begin(), members.end(), static_cast<int>(p)) ==
                members.end() &&
            ProcessUsesType(spec.processes[p], s.type))
          joinable.push_back(static_cast<int>(p));
      if (!joinable.empty() && rng.NextBounded(2) == 0) {
        members.push_back(joinable[rng.NextBounded(joinable.size())]);
      } else {
        members.erase(members.begin() +
                      static_cast<std::ptrdiff_t>(
                          rng.NextBounded(members.size())));
      }
      for (int m : members)
        op.group.push_back(spec.processes[static_cast<std::size_t>(m)].name);
      break;
    }
    case DeltaKind::kRemoveProcess: {
      op.process =
          spec.processes[rng.NextBounded(spec.processes.size())].name;
      break;
    }
    case DeltaKind::kAddProcess: {
      SpecProcess added;
      added.name = UniqueProcessName(spec, rng.NextU64());
      SpecBlock block;
      block.name = "main";
      const int ops = 2 + static_cast<int>(rng.NextBounded(3));
      int critical_path = 0;
      for (int i = 0; i < ops; ++i) {
        SpecOp o;
        o.type = static_cast<int>(rng.NextBounded(spec.types.size()));
        o.name = "j" + std::to_string(i);
        critical_path += spec.types[static_cast<std::size_t>(o.type)].delay;
        block.ops.push_back(std::move(o));
        if (i > 0) block.edges.push_back(SpecEdge{i - 1, i});
      }
      block.time_range =
          critical_path + 1 + static_cast<int>(rng.NextBounded(4));
      added.deadline = block.time_range;
      added.blocks.push_back(std::move(block));
      op.added = std::move(added);
      break;
    }
  }
  return op;
}

/// Fresh-solve verdict for a model: scheduled, bound AND certified — the
/// same gate every repair rung passes through.
bool FreshSolveCertifies(SystemModel model) {
  if (!model.Validate().ok()) return false;
  StatusOr<CoupledResult> run = CoupledScheduler(model, CoupledParams{}).Run();
  if (!run.ok()) return false;
  auto binding =
      BindSystem(model, run.value().schedule, run.value().allocation);
  if (!binding.ok()) return false;
  return CertifySchedule(model, run.value().schedule, run.value().allocation,
                         &binding.value())
      .ok();
}

/// The fresh-vs-repair core, with the delta held fixed — shared by the
/// per-case runner and the shrink predicate (which must replay the SAME
/// delta against ever-smaller bases).
void JudgeWithDelta(const SystemModel& base, const CoupledResult& certified,
                    const ModelDelta& delta, const SystemModel& post,
                    PerturbOutcome& out) {
  out.delta_applied = true;
  out.delta_summary = delta.Summary();
  out.fresh_ok = FreshSolveCertifies(post);

  StatusOr<RepairResult> repaired =
      RepairSchedule(base, certified, delta, RepairOptions{});
  if (repaired.ok()) {
    out.repair_ok = true;
    out.rung = repaired.value().rung;
    // Independent re-check: do not trust the repair engine's own gate.
    const RepairResult& r = repaired.value();
    auto binding =
        BindSystem(*r.model, r.result.schedule, r.result.allocation);
    const bool recertified =
        binding.ok() && CertifySchedule(*r.model, r.result.schedule,
                                        r.result.allocation, &binding.value())
                            .ok();
    if (!recertified) {
      out.diverged = true;
      out.detail = "repaired schedule fails independent re-certification";
    }
  } else if (out.fresh_ok) {
    out.diverged = true;
    out.detail = "repair failed (" + repaired.status().message() +
                 ") where the fresh solve succeeds";
  }
}

/// Base pipeline: validate + schedule + bind + certify. Returns the result
/// through `certified` iff every stage passed.
bool PrepareBase(SystemModel& base, CoupledResult& certified) {
  if (!base.Validate().ok()) return false;
  StatusOr<CoupledResult> run = CoupledScheduler(base, CoupledParams{}).Run();
  if (!run.ok()) return false;
  auto binding =
      BindSystem(base, run.value().schedule, run.value().allocation);
  if (!binding.ok()) return false;
  if (!CertifySchedule(base, run.value().schedule, run.value().allocation,
                       &binding.value())
           .ok())
    return false;
  certified = std::move(run).value();
  return true;
}

struct Slot {
  GeneratedCase gen;
  PerturbOutcome outcome;
  ModelDelta delta;  // the applied delta (valid when delta_applied)
};

StatusOr<std::string> PersistDivergence(const Slot& slot, int index,
                                        const FuzzOptions& options,
                                        int* shrink_attempts) {
  const ModelDelta& delta = slot.delta;
  const SpecPredicate keep = [&](const ModelSpec& s) {
    StatusOr<SystemModel> m = BuildModel(s);
    if (!m.ok()) return false;
    SystemModel base = std::move(m).value();
    CoupledResult certified;
    if (!PrepareBase(base, certified)) return false;
    StatusOr<SystemModel> post = ApplyDelta(base, delta);
    if (!post.ok()) return false;  // a deletion broke the delta's names
    PerturbOutcome probe;
    JudgeWithDelta(base, certified, delta, post.value(), probe);
    return probe.diverged;
  };

  const ModelSpec original = ExtractSpec(slot.gen.model);
  const SystemModel* to_emit = &slot.gen.model;
  SystemModel shrunk_model;
  *shrink_attempts = 0;
  if (options.shrink && keep(original)) {
    ShrinkResult shrunk = ShrinkSpec(original, keep, options.shrink_options);
    *shrink_attempts = shrunk.attempts;
    StatusOr<SystemModel> m = BuildModel(shrunk.spec);
    if (m.ok()) {
      shrunk_model = std::move(m).value();
      to_emit = &shrunk_model;
    }
  }

  std::vector<std::string> header;
  header.push_back(
      "perturb-then-repair repro (replayable with: mshlsc <this file> "
      "--repair <this file's .delta sidecar>)");
  header.push_back("run seed " + std::to_string(options.seed) + ", case " +
                   std::to_string(index) + ", case seed " +
                   std::to_string(slot.outcome.seed));
  header.push_back("DIVERGENCE " + slot.outcome.detail);

  std::error_code ec;
  std::filesystem::create_directories(options.repro_dir, ec);
  if (ec)
    return Status{StatusCode::kInternal,
                  "cannot create repro directory '" + options.repro_dir +
                      "': " + ec.message()};
  const std::string stem =
      (std::filesystem::path(options.repro_dir) /
       ("repair-" + std::to_string(options.seed) + "-case" +
        std::to_string(index)))
          .string();
  {
    std::ofstream out(stem + ".hls", std::ios::trunc);
    out << EmitSystemText(*to_emit, header);
    if (!out.good())
      return Status{StatusCode::kInternal,
                    "cannot write '" + stem + ".hls'"};
  }
  {
    std::ofstream out(stem + ".delta", std::ios::trunc);
    out << "# delta for " << stem << ".hls (" << slot.outcome.delta_summary
        << ")\n"
        << RenderDelta(delta, *to_emit);
    if (!out.good())
      return Status{StatusCode::kInternal,
                    "cannot write '" + stem + ".delta'"};
  }
  return stem + ".hls";
}

}  // namespace

ModelDelta GenerateDelta(const SystemModel& base, std::uint64_t seed) {
  Rng rng(seed ^ 0x70657274757262ULL);  // "perturb"
  const ModelSpec spec = ExtractSpec(base);
  ModelDelta delta;
  delta.ops.push_back(DrawOp(spec, rng));
  return delta;
}

std::string PerturbOutcome::LogLine(int index) const {
  std::string line = "case " + std::to_string(index) + " seed=" +
                     std::to_string(seed);
  if (!base_ready) return line + " skip=base";
  if (!delta_applied) return line + " skip=delta";
  line += " delta='" + delta_summary + "'";
  line += std::string(" fresh=") + (fresh_ok ? "ok" : "fail");
  line += std::string(" repair=") +
          (repair_ok ? RepairRungName(rung) : "fail");
  if (diverged) line += " DIVERGED: " + detail;
  return line;
}

PerturbOutcome RunPerturbCase(const SystemModel& base_in,
                              std::uint64_t seed) {
  PerturbOutcome out;
  out.seed = seed;
  SystemModel base = base_in;
  CoupledResult certified;
  if (!PrepareBase(base, certified)) return out;
  out.base_ready = true;

  // Several draws: a single unlucky delta (e.g. an infeasible deadline
  // ApplyDelta rejects) should not waste the whole case.
  Rng draw(seed);
  for (int attempt = 0; attempt < 6; ++attempt) {
    ModelDelta delta = GenerateDelta(base, draw.NextU64());
    StatusOr<SystemModel> post = ApplyDelta(base, delta);
    if (!post.ok()) continue;
    JudgeWithDelta(base, certified, delta, post.value(), out);
    return out;
  }
  return out;  // delta_applied stays false
}

std::string PerturbReport::Summary() const {
  std::string out = "perturb: " + std::to_string(cases) + " cases (" +
                    std::to_string(base_skipped) + " base-skipped, " +
                    std::to_string(delta_rejected) + " delta-rejected), " +
                    std::to_string(repaired) + " repaired (in-place=" +
                    std::to_string(rung_counts[0]) + ", widen=" +
                    std::to_string(rung_counts[1]) + ", relax=" +
                    std::to_string(rung_counts[2]) + ", resolve=" +
                    std::to_string(rung_counts[3]) + "), " +
                    std::to_string(both_failed) + " both-failed, " +
                    std::to_string(divergences) + " divergence(s)";
  if (!repro_paths.empty())
    out += ", " + std::to_string(repro_paths.size()) + " repro(s) written";
  return out;
}

StatusOr<PerturbReport> RunPerturbFuzz(const FuzzOptions& options) {
  PerturbReport report;
  const int n = std::max(0, options.cases);
  report.cases = n;

  // This campaign needs living bases: the adversarial generator classes
  // (infeasible / grid-hostile) would only inflate base_skipped.
  FuzzGenOptions gen = options.gen;
  gen.infeasible_probability = 0;
  gen.grid_hostile_probability = 0;

  std::vector<Slot> slots(static_cast<std::size_t>(n));
  const auto run_case = [&](std::size_t i) -> Status {
    const std::uint64_t cs =
        FuzzCaseSeed(options.seed, static_cast<int>(i));
    slots[i].gen = GenerateSystem(cs, gen);
    slots[i].outcome = RunPerturbCase(slots[i].gen.model, cs);
    if (slots[i].outcome.delta_applied) {
      // Re-derive the winning delta for persistence: same stream as
      // RunPerturbCase (first draw that ApplyDelta accepts).
      Rng draw(cs);
      for (int attempt = 0; attempt < 6; ++attempt) {
        ModelDelta delta = GenerateDelta(slots[i].gen.model, draw.NextU64());
        if (ApplyDelta(slots[i].gen.model, delta).ok()) {
          slots[i].delta = std::move(delta);
          break;
        }
      }
    }
    return Status::Ok();
  };
  if (options.jobs > 1) {
    ThreadPool pool(options.jobs);
    if (Status st = ParallelFor(&pool, slots.size(), run_case); !st.ok())
      return st;
  } else {
    if (Status st = ParallelFor(nullptr, slots.size(), run_case); !st.ok())
      return st;
  }

  int persisted = 0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const PerturbOutcome& o = slots[i].outcome;
    report.log.push_back(o.LogLine(static_cast<int>(i)));
    if (!o.base_ready) ++report.base_skipped;
    else if (!o.delta_applied) ++report.delta_rejected;
    else if (o.repair_ok) {
      ++report.repaired;
      ++report.rung_counts[static_cast<int>(o.rung)];
    } else if (!o.fresh_ok) {
      ++report.both_failed;
    }
    if (o.diverged) {
      ++report.divergences;
      if (persisted < options.max_repros && !options.repro_dir.empty()) {
        ++persisted;
        int attempts = 0;
        StatusOr<std::string> path = PersistDivergence(
            slots[i], static_cast<int>(i), options, &attempts);
        if (!path.ok()) return path.status();
        report.repro_paths.push_back(path.value());
        report.log.push_back("repro " + path.value() +
                             " (+.delta) shrink-attempts=" +
                             std::to_string(attempts));
      }
    }
  }
  return report;
}

}  // namespace mshls
