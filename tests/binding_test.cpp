#include <gtest/gtest.h>

#include "bind/binding.h"
#include "bind/registers.h"
#include "modulo/coupled_scheduler.h"
#include "workloads/benchmarks.h"
#include "workloads/paper_system.h"

namespace mshls {
namespace {

class BindingTest : public ::testing::Test {
 protected:
  CoupledResult Run(SystemModel& model) {
    EXPECT_TRUE(model.Validate().ok());
    CoupledScheduler scheduler(model, CoupledParams{});
    auto result = scheduler.Run();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }
};

TEST_F(BindingTest, PaperSystemBindsAndValidates) {
  PaperSystem sys = BuildPaperSystem();
  const CoupledResult result = Run(sys.model);
  auto binding = BindSystem(sys.model, result.schedule, result.allocation);
  ASSERT_TRUE(binding.ok()) << binding.status().ToString();
  EXPECT_TRUE(ValidateBinding(sys.model, result.schedule, result.allocation,
                              binding.value())
                  .ok());
  // Instance count equals pools + locals.
  std::size_t expected = 0;
  for (const GlobalTypeAllocation& ga : result.allocation.global)
    expected += static_cast<std::size_t>(ga.instances);
  for (const auto& per_process : result.allocation.local)
    for (int n : per_process) expected += static_cast<std::size_t>(n);
  EXPECT_EQ(binding.value().instances.size(), expected);
}

TEST_F(BindingTest, EveryOpBoundToMatchingType) {
  PaperSystem sys = BuildPaperSystem();
  const CoupledResult result = Run(sys.model);
  auto binding = BindSystem(sys.model, result.schedule, result.allocation);
  ASSERT_TRUE(binding.ok());
  for (const Block& b : sys.model.blocks()) {
    for (const Operation& op : b.graph.ops()) {
      const InstanceId inst = binding.value().of(b.id, op.id);
      ASSERT_TRUE(inst.valid());
      EXPECT_EQ(binding.value().info(inst).type, op.type);
    }
  }
}

TEST_F(BindingTest, LocalIntervalAssignmentSharesSequentially) {
  // Four sequential adds must all land on one local adder instance.
  SystemModel m;
  const PaperTypes t = AddPaperTypes(m.library());
  DataFlowGraph g;
  OpId prev = OpId::invalid();
  for (int i = 0; i < 4; ++i) {
    const OpId cur = g.AddOp(t.add, "a" + std::to_string(i));
    if (prev.valid()) g.AddEdge(prev, cur);
    prev = cur;
  }
  ASSERT_TRUE(g.Validate().ok());
  const ProcessId p = m.AddProcess("p", 4);
  const BlockId b = m.AddBlock(p, "b", std::move(g), 4);
  const CoupledResult result = Run(m);
  auto binding = BindSystem(m, result.schedule, result.allocation);
  ASSERT_TRUE(binding.ok());
  const InstanceId first = binding.value().of(b, OpId{0});
  for (int i = 1; i < 4; ++i)
    EXPECT_EQ(binding.value().of(b, OpId{i}), first);
  EXPECT_FALSE(binding.value().info(first).global);
  EXPECT_EQ(binding.value().info(first).owner, p);
}

TEST_F(BindingTest, GlobalPoolInstancesPartitionedByResidue) {
  // Two processes, each two adds, period 2, aligned on opposite residues:
  // both processes must use the same physical pool instance.
  SystemModel m;
  const PaperTypes t = AddPaperTypes(m.library());
  std::vector<ProcessId> procs;
  std::vector<BlockId> blocks;
  for (int pi = 0; pi < 2; ++pi) {
    DataFlowGraph g;
    g.AddOp(t.add, "a0");
    g.AddOp(t.add, "a1");
    EXPECT_TRUE(g.Validate().ok());
    const ProcessId p = m.AddProcess("p" + std::to_string(pi), 4);
    blocks.push_back(m.AddBlock(p, "b", std::move(g), 4));
    procs.push_back(p);
  }
  m.MakeGlobal(t.add, procs);
  m.SetPeriod(t.add, 2);
  const CoupledResult result = Run(m);
  ASSERT_EQ(result.allocation.FindGlobal(t.add)->instances, 1);
  auto binding = BindSystem(m, result.schedule, result.allocation);
  ASSERT_TRUE(binding.ok());
  EXPECT_TRUE(ValidateBinding(m, result.schedule, result.allocation,
                              binding.value())
                  .ok());
  // All four ops on the single pool instance.
  for (BlockId b : blocks)
    for (int i = 0; i < 2; ++i) {
      const InstanceInfo& info =
          binding.value().info(binding.value().of(b, OpId{i}));
      EXPECT_TRUE(info.global);
      EXPECT_EQ(info.local_index, 0);
    }
}

TEST_F(BindingTest, ValidateBindingDetectsForgedOwnership) {
  PaperSystem sys = BuildPaperSystem();
  const CoupledResult result = Run(sys.model);
  auto binding = BindSystem(sys.model, result.schedule, result.allocation);
  ASSERT_TRUE(binding.ok());
  // Forge: rebind some op to a wrong-type instance.
  SystemBinding forged = std::move(binding).value();
  const Block& b0 = sys.model.block(BlockId{0});
  OpId add_op = OpId::invalid();
  InstanceId mult_inst = InstanceId::invalid();
  for (const Operation& op : b0.graph.ops())
    if (op.type == sys.types.add) add_op = op.id;
  for (const InstanceInfo& info : forged.instances)
    if (info.type == sys.types.mult) mult_inst = info.id;
  ASSERT_TRUE(add_op.valid());
  ASSERT_TRUE(mult_inst.valid());
  forged.op_instance[0][add_op.index()] = mult_inst;
  EXPECT_FALSE(ValidateBinding(sys.model, result.schedule, result.allocation,
                               forged)
                   .ok());
}

// ---- register allocation ----

TEST(RegistersTest, LifetimesFollowScheduleAndConsumers) {
  SystemModel m;
  const PaperTypes t = AddPaperTypes(m.library());
  DataFlowGraph g;
  const OpId a = g.AddOp(t.add, "a");
  const OpId mu = g.AddOp(t.mult, "m");
  const OpId b = g.AddOp(t.add, "b");
  g.AddEdge(a, mu);
  g.AddEdge(mu, b);
  ASSERT_TRUE(g.Validate().ok());
  const ProcessId p = m.AddProcess("p", 6);
  const BlockId bid = m.AddBlock(p, "b", std::move(g), 6);
  ASSERT_TRUE(m.Validate().ok());
  BlockSchedule s(3);
  s.set_start(a, 0);
  s.set_start(mu, 1);
  s.set_start(b, 3);
  const auto lifetimes = ComputeLifetimes(m.block(bid), m.library(), s);
  // a: born 1 (end of add), read by m starting at 1 -> death max(1+1,
  // birth+1) = 2.
  EXPECT_EQ(lifetimes[a.index()].birth, 1);
  EXPECT_EQ(lifetimes[a.index()].death, 2);
  // m: born 3, read by b at 3 -> death 4.
  EXPECT_EQ(lifetimes[mu.index()].birth, 3);
  EXPECT_EQ(lifetimes[mu.index()].death, 4);
  // b: sink -> lives to block end.
  EXPECT_EQ(lifetimes[b.index()].birth, 4);
  EXPECT_EQ(lifetimes[b.index()].death, 7);  // beyond the range: observable
}

TEST(RegistersTest, LeftEdgePacksDisjointLifetimes) {
  std::vector<ValueLifetime> lifetimes = {
      {OpId{0}, 0, 2},
      {OpId{1}, 2, 4},
      {OpId{2}, 4, 6},
  };
  const auto alloc = AllocateRegisters(lifetimes);
  EXPECT_EQ(alloc.register_count, 1);
  EXPECT_EQ(alloc.reg_of[0], alloc.reg_of[1]);
}

TEST(RegistersTest, LeftEdgeNeedsMaxOverlap) {
  std::vector<ValueLifetime> lifetimes = {
      {OpId{0}, 0, 4},
      {OpId{1}, 1, 3},
      {OpId{2}, 2, 5},
      {OpId{3}, 4, 6},  // can reuse the register of op1
  };
  const auto alloc = AllocateRegisters(lifetimes);
  EXPECT_EQ(alloc.register_count, 3);
  // No two overlapping values share a register.
  for (std::size_t i = 0; i < lifetimes.size(); ++i)
    for (std::size_t j = i + 1; j < lifetimes.size(); ++j) {
      const bool overlap = lifetimes[i].birth < lifetimes[j].death &&
                           lifetimes[j].birth < lifetimes[i].death;
      if (overlap)
        EXPECT_NE(alloc.reg_of[lifetimes[i].producer.index()],
                  alloc.reg_of[lifetimes[j].producer.index()]);
    }
}

TEST(RegistersTest, EmptyLifetimes) {
  const auto alloc = AllocateRegisters({});
  EXPECT_EQ(alloc.register_count, 0);
}

TEST(RegistersTest, SystemRegistersTakeMaxOverBlocks) {
  SystemModel m;
  const PaperTypes t = AddPaperTypes(m.library());
  const ProcessId p = m.AddProcess("p", 8);
  for (int blk = 0; blk < 2; ++blk) {
    DataFlowGraph g;
    for (int i = 0; i < (blk == 0 ? 1 : 3); ++i)
      g.AddOp(t.add, "a" + std::to_string(i));
    ASSERT_TRUE(g.Validate().ok());
    m.AddBlock(p, "b" + std::to_string(blk), std::move(g), 4);
  }
  ASSERT_TRUE(m.Validate().ok());
  SystemSchedule sched;
  sched.blocks.resize(2);
  sched.of(BlockId{0}) = BlockSchedule(1);
  sched.of(BlockId{0}).set_start(OpId{0}, 0);
  sched.of(BlockId{1}) = BlockSchedule(3);
  for (int i = 0; i < 3; ++i) sched.of(BlockId{1}).set_start(OpId{i}, 0);
  const auto reports = AllocateSystemRegisters(m, sched);
  ASSERT_EQ(reports.size(), 1u);
  // Block 1 needs 3 registers (all values live to block end), block 0
  // needs 1: process register file = 3.
  EXPECT_EQ(reports[0].register_count, 3);
}

}  // namespace
}  // namespace mshls
