// Experiment F1 — reproduces Figure 1 of the paper (§3.2):
// "Time steps of access authorization for process p onto resource g".
//
// A process executes two operations of a global type at one time step of
// its schedule; the modulo mapping of eq. 1 grants the same authorization
// at every absolute step congruent to it, so the usage recorded at residue
// tau covers the whole rippled series in the figure.
#include <cstdio>

#include "modulo/coupled_scheduler.h"
#include "modulo/modulo_map.h"
#include "report/bench_json.h"
#include "workloads/benchmarks.h"

using namespace mshls;

int main(int argc, char** argv) {
  const std::string json_file = TakeJsonFlag(argc, argv);
  std::printf("== F1: Figure 1 — periodic access authorization (eq. 1) ==\n");
  const int lambda = 4;
  const int horizon = 16;

  // One process, one block: two adds at step 2, one at step 5.
  SystemModel model;
  const PaperTypes types = AddPaperTypes(model.library());
  DataFlowGraph g;
  g.AddOp(types.add, "a1");
  g.AddOp(types.add, "a2");
  g.AddOp(types.add, "a3");
  if (!g.Validate().ok()) return 1;
  const ProcessId p = model.AddProcess("p", 8);
  const BlockId b = model.AddBlock(p, "main", std::move(g), 8);
  model.MakeGlobal(types.add, {p});
  model.SetPeriod(types.add, lambda);
  if (!model.Validate().ok()) return 1;

  SystemSchedule schedule;
  schedule.blocks.resize(1);
  schedule.of(b) = BlockSchedule(3);
  schedule.of(b).set_start(OpId{0}, 2);
  schedule.of(b).set_start(OpId{1}, 2);
  schedule.of(b).set_start(OpId{2}, 5);
  const Allocation alloc = ComputeAllocation(model, schedule);
  const GlobalTypeAllocation& ga = alloc.global[0];

  // Upper graph of the figure: the block's own usage over absolute time.
  std::printf("\nblock usage d(t), two adds at t=2, one add at t=5:\n t: ");
  for (int t = 0; t < horizon; ++t) std::printf("%3d", t);
  std::printf("\n d: ");
  const auto occ = OccupancyProfile(model.block(b), model.library(),
                                    schedule.of(b), types.add);
  for (int t = 0; t < horizon; ++t)
    std::printf("%3d", t < static_cast<int>(occ.size()) ? occ[t] : 0);

  // Lower graph: authorization per residue, rippled over absolute time.
  std::printf("\n\nauthorization A(tau) with lambda=%d: ", lambda);
  for (int tau = 0; tau < lambda; ++tau)
    std::printf(" A(%d)=%d", tau, ga.authorization[0][tau]);
  std::printf("\nauthorized steps over absolute time (rippled line of the "
              "figure):\n t: ");
  for (int t = 0; t < horizon; ++t) std::printf("%3d", t);
  std::printf("\n A: ");
  for (int t = 0; t < horizon; ++t)
    std::printf("%3d", ga.authorization[0][static_cast<std::size_t>(
                    ResidueOf(t, 0, lambda))]);
  std::printf("\n\nreading: the two-op authorization at residue %d is valid "
              "at every t in {2, 6, 10, ...} — the process may execute the "
              "same number of adds at all of them without increasing its "
              "requirement (paper §3.2).\n",
              ResidueOf(2, 0, lambda));

  if (!json_file.empty()) {
    BenchJson json("F1", "fig1");
    json.params().I("lambda", lambda).I("horizon", horizon);
    for (int tau = 0; tau < lambda; ++tau)
      json.AddRow().I("tau", tau).I(
          "authorization",
          ga.authorization[0][static_cast<std::size_t>(tau)]);
    if (!json.WriteFile(json_file)) return 1;
  }
  return 0;
}
