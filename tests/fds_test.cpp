#include <gtest/gtest.h>

#include <cmath>

#include "fds/distribution.h"
#include "fds/fds_scheduler.h"
#include "fds/force.h"
#include "sched/list_scheduler.h"
#include "workloads/benchmarks.h"

namespace mshls {
namespace {

class FdsFixture : public ::testing::Test {
 protected:
  SystemModel model_;
  PaperTypes types_ = AddPaperTypes(model_.library());

  const Block& AddBlockOf(DataFlowGraph g, int range) {
    const ProcessId p = model_.AddProcess(
        "p" + std::to_string(model_.process_count()));
    const BlockId b = model_.AddBlock(p, "b", std::move(g), range);
    EXPECT_TRUE(model_.Validate().ok());
    return model_.block(b);
  }

  TimeFrameSet FramesOf(const Block& b) {
    auto f = TimeFrameSet::Compute(b.graph, model_.DelayOf(b.id),
                                   b.time_range);
    EXPECT_TRUE(f.ok());
    return std::move(f).value();
  }
};

// ---- distribution function (paper eq. 4) ----

TEST_F(FdsFixture, UniformProbabilityOverFrame) {
  Profile p(6, 0.0);
  AddOccupancyProbability(p, TimeFrame{1, 3}, /*dii=*/1, 1.0);
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 1.0 / 3);
  EXPECT_DOUBLE_EQ(p[2], 1.0 / 3);
  EXPECT_DOUBLE_EQ(p[3], 1.0 / 3);
  EXPECT_DOUBLE_EQ(p[4], 0.0);
}

TEST_F(FdsFixture, OccupancySpreadForMulticycle) {
  // dii = 2, frame {0,1}: starts 0 and 1 each w.p. 1/2; occupancy:
  // t0: start0 -> 1/2; t1: start0+start1 -> 1; t2: start1 -> 1/2.
  Profile p(4, 0.0);
  AddOccupancyProbability(p, TimeFrame{0, 1}, /*dii=*/2, 1.0);
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 1.0);
  EXPECT_DOUBLE_EQ(p[2], 0.5);
  EXPECT_DOUBLE_EQ(p[3], 0.0);
}

TEST_F(FdsFixture, ProbabilityMassIsConserved) {
  // Total mass = dii for every op, independent of the frame width.
  for (int width = 1; width <= 5; ++width) {
    for (int dii = 1; dii <= 3; ++dii) {
      Profile p(12, 0.0);
      AddOccupancyProbability(p, TimeFrame{2, 2 + width - 1}, dii, 1.0);
      EXPECT_NEAR(ProfileMass(p), dii, 1e-12);
    }
  }
}

TEST_F(FdsFixture, TypeProfileSumsOpsOfThatTypeOnly) {
  DataFlowGraph g;
  g.AddOp(types_.add, "a1");
  g.AddOp(types_.add, "a2");
  g.AddOp(types_.mult, "m");
  ASSERT_TRUE(g.Validate().ok());
  const Block& b = AddBlockOf(std::move(g), 4);
  const TimeFrameSet frames = FramesOf(b);
  const Profile add = BuildTypeProfile(b, model_.library(), frames,
                                       types_.add);
  EXPECT_NEAR(ProfileMass(add), 2.0, 1e-12);
  const Profile mult = BuildTypeProfile(b, model_.library(), frames,
                                        types_.mult);
  EXPECT_NEAR(ProfileMass(mult), 1.0, 1e-12);
  const Profile sub = BuildTypeProfile(b, model_.library(), frames,
                                       types_.sub);
  EXPECT_NEAR(ProfileMass(sub), 0.0, 1e-12);
}

// ---- spring force (paper eq. 5/6) ----

TEST_F(FdsFixture, SpringForceMatchesHandComputation) {
  // q = [1, 2], dq = [+0.5, -0.5]; eta = 0, c = 0:
  // F = 1*0.5 + 2*(-0.5) = -0.5 (an improvement).
  const Profile q{1.0, 2.0};
  const Profile dq{0.5, -0.5};
  FdsParams params;
  params.lookahead = 0;
  params.global_spring_constant = 0;
  EXPECT_DOUBLE_EQ(SpringForce(q, dq, params, 1.0), -0.5);
}

TEST_F(FdsFixture, LookaheadPenalizesSelfDisplacement) {
  // With eta > 0 a displacement into an empty region still costs force.
  const Profile q{0.0, 0.0};
  const Profile dq{1.0, -1.0};
  FdsParams params;
  params.lookahead = 1.0 / 3;
  params.global_spring_constant = 0;
  // F = (0 + eta*1)*1 + (0 + eta*-1)*(-1) = 2*eta.
  EXPECT_NEAR(SpringForce(q, dq, params, 1.0), 2.0 / 3, 1e-12);
}

TEST_F(FdsFixture, GlobalSpringConstantCancelsOnBalancedDisplacement) {
  // sum(dq) == 0 makes the constant term vanish: c contributes c*sum(dq).
  const Profile q{1.0, 3.0, 0.0};
  const Profile dq{0.25, -0.5, 0.25};
  FdsParams with_c;
  with_c.lookahead = 0;
  with_c.global_spring_constant = 7.0;
  FdsParams without_c = with_c;
  without_c.global_spring_constant = 0.0;
  EXPECT_NEAR(SpringForce(q, dq, with_c, 1.0),
              SpringForce(q, dq, without_c, 1.0), 1e-12);
}

TEST_F(FdsFixture, TypeWeightUsesAreaWhenEnabled) {
  FdsParams params;
  EXPECT_DOUBLE_EQ(TypeWeight(model_.library(), types_.mult, params), 1.0);
  params.area_weighting = true;
  EXPECT_DOUBLE_EQ(TypeWeight(model_.library(), types_.mult, params), 4.0);
  EXPECT_DOUBLE_EQ(TypeWeight(model_.library(), types_.add, params), 1.0);
}

// ---- the classic Paulin/Knight example shape ----

TEST_F(FdsFixture, ForceFavoursEmptyTimeStep) {
  // Two independent adds in 2 steps: once the first is fixed at step 0,
  // placing the second at step 1 must have lower force than at step 0.
  DataFlowGraph g;
  g.AddOp(types_.add, "a1");
  g.AddOp(types_.add, "a2");
  ASSERT_TRUE(g.Validate().ok());
  const Block& b = AddBlockOf(std::move(g), 2);
  TimeFrameSet frames = FramesOf(b);
  ASSERT_TRUE(
      frames.Narrow(b.graph, model_.DelayOf(b.id), OpId{0}, TimeFrame{0, 0})
          .ok());
  const auto profiles = BuildAllProfiles(b, model_.library(), frames);
  FdsParams params;
  const double f_same = EvaluateLocalNarrowForce(
      b, model_.library(), frames, profiles, OpId{1}, TimeFrame{0, 0},
      params);
  const double f_other = EvaluateLocalNarrowForce(
      b, model_.library(), frames, profiles, OpId{1}, TimeFrame{1, 1},
      params);
  EXPECT_LT(f_other, f_same);
}

// ---- schedulers ----

struct SchedulerCase {
  const char* name;
  bool improved;  // false = classic FDS, true = IFDS
};

class SchedulerTest : public FdsFixture,
                      public ::testing::WithParamInterface<SchedulerCase> {
 protected:
  StatusOr<FdsResult> Schedule(const Block& b, const FdsParams& params = {}) {
    return GetParam().improved
               ? ScheduleBlockIfds(b, model_.library(), params)
               : ScheduleBlockFds(b, model_.library(), params);
  }
};

TEST_P(SchedulerTest, ProducesValidSchedule) {
  const Block& b = AddBlockOf(BuildEwf(types_), 20);
  auto res = Schedule(b);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(
      ValidateBlockSchedule(b, model_.DelayOf(b.id), res.value().schedule)
          .ok());
}

TEST_P(SchedulerTest, TightDeadlineIsTrivial) {
  const Block& b = AddBlockOf(BuildDiffeq(types_), 8);  // critical path
  auto res = Schedule(b);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(
      ValidateBlockSchedule(b, model_.DelayOf(b.id), res.value().schedule)
          .ok());
}

TEST_P(SchedulerTest, SmoothesTwoIndependentAdds) {
  DataFlowGraph g;
  g.AddOp(types_.add, "a1");
  g.AddOp(types_.add, "a2");
  ASSERT_TRUE(g.Validate().ok());
  const Block& b = AddBlockOf(std::move(g), 2);
  auto res = Schedule(b);
  ASSERT_TRUE(res.ok());
  // One add per step -> a single adder suffices.
  EXPECT_EQ(res.value().usage[types_.add.index()], 1);
}

TEST_P(SchedulerTest, DeterministicAcrossRuns) {
  const Block& b = AddBlockOf(BuildDiffeq(types_), 12);
  auto r1 = Schedule(b);
  auto r2 = Schedule(b);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  for (const Operation& op : b.graph.ops())
    EXPECT_EQ(r1.value().schedule.start(op.id),
              r2.value().schedule.start(op.id));
}

TEST_P(SchedulerTest, CompetitiveWithListSchedulingOnBenchmarks) {
  // Force-directed scheduling should not need more total area than the
  // greedy list heuristic on the classic benchmarks.
  struct Case {
    DataFlowGraph graph;
    int range;
  };
  std::vector<Case> cases;
  cases.push_back({BuildEwf(types_), 21});
  cases.push_back({BuildDiffeq(types_), 12});
  cases.push_back({BuildFir16(types_), 10});
  for (Case& c : cases) {
    const Block& b = AddBlockOf(std::move(c.graph), c.range);
    auto fds = Schedule(b);
    auto list = ListScheduleTimeConstrained(b, model_.library());
    ASSERT_TRUE(fds.ok());
    ASSERT_TRUE(list.ok());
    int fds_area = 0;
    int list_area = 0;
    for (const ResourceType& t : model_.library().types()) {
      fds_area += fds.value().usage[t.id.index()] * t.area;
      list_area += list.value().allocation[t.id.index()] * t.area;
    }
    EXPECT_LE(fds_area, list_area + 1)  // allow one cheap unit of slack
        << "block range " << b.time_range;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, SchedulerTest,
    ::testing::Values(SchedulerCase{"classic", false},
                      SchedulerCase{"improved", true}),
    [](const ::testing::TestParamInfo<SchedulerCase>& info) {
      return info.param.name;
    });

// ---- IFDS specifics ----

TEST_F(FdsFixture, IfdsIterationsEqualInitialSlackForIndependentOps) {
  // Gradual reduction removes exactly one step of slack per iteration when
  // nothing propagates (independent ops).
  DataFlowGraph g;
  g.AddOp(types_.add, "a1");
  g.AddOp(types_.add, "a2");
  g.AddOp(types_.add, "a3");
  ASSERT_TRUE(g.Validate().ok());
  const Block& b = AddBlockOf(std::move(g), 3);
  auto frames = TimeFrameSet::Compute(b.graph, model_.DelayOf(b.id), 3);
  ASSERT_TRUE(frames.ok());
  const int slack = frames.value().TotalSlack();
  auto res = ScheduleBlockIfds(b, model_.library(), {});
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().iterations, slack);
}

TEST_F(FdsFixture, IfdsObserverSeesMonotoneShrinking) {
  const Block& b = AddBlockOf(BuildDiffeq(types_), 12);
  int last_total_width = 1 << 30;
  int calls = 0;
  auto observer = [&](const IterationTrace& trace) {
    int total = 0;
    for (const CandidateEval& c : trace.candidates) total += c.frame.width();
    EXPECT_LT(total, last_total_width);
    last_total_width = total;
    EXPECT_EQ(trace.iteration, calls);
    ++calls;
    EXPECT_TRUE(trace.chosen.valid());
  };
  auto res = ScheduleBlockIfds(b, model_.library(), {}, observer);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(calls, res.value().iterations);
}

TEST_F(FdsFixture, IfdsUsuallyNeedsFewerEvaluationsThanClassicFds) {
  // Not a strict theorem, but on EWF the gradual reduction performs far
  // fewer force evaluations per iteration (2 vs frame-width); here we just
  // check both terminate and produce comparable quality.
  const Block& b = AddBlockOf(BuildEwf(types_), 19);
  auto classic = ScheduleBlockFds(b, model_.library(), {});
  auto improved = ScheduleBlockIfds(b, model_.library(), {});
  ASSERT_TRUE(classic.ok());
  ASSERT_TRUE(improved.ok());
  int classic_area = 0;
  int improved_area = 0;
  for (const ResourceType& t : model_.library().types()) {
    classic_area += classic.value().usage[t.id.index()] * t.area;
    improved_area += improved.value().usage[t.id.index()] * t.area;
  }
  EXPECT_LE(std::abs(classic_area - improved_area), 4);
}

TEST_F(FdsFixture, EwfResourceUsageIsReasonable) {
  // Sanity band for the canonical benchmark: at 17..21 steps FDS-family
  // schedulers land in the published neighbourhood (2-3 adders, 1-3
  // pipelined multipliers).
  for (int range : {17, 19, 21}) {
    const Block& b = AddBlockOf(BuildEwf(types_), range);
    auto res = ScheduleBlockIfds(b, model_.library(), {});
    ASSERT_TRUE(res.ok());
    EXPECT_GE(res.value().usage[types_.add.index()], 2);
    EXPECT_LE(res.value().usage[types_.add.index()], 4) << range;
    EXPECT_GE(res.value().usage[types_.mult.index()], 1);
    EXPECT_LE(res.value().usage[types_.mult.index()], 3) << range;
  }
}

}  // namespace
}  // namespace mshls
