// Hardware-structure simulation of the complete synthesized system.
//
// Where sim/simulator.h checks *occupancy* (no pool oversubscription) and
// sim/value_executor.h checks *one block's dataflow* through its register
// file, this simulator puts the whole generated architecture together and
// runs it cycle by cycle, the way the emitted RTL would:
//
//   * one FSM (cstep counter) per process, started by grid-aligned
//     activations;
//   * one register file per process (left-edge allocation per block);
//   * one functional unit per bound instance, with pipeline latency;
//   * per global type, a free-running modulo-lambda residue counter; a
//     pool instance at residue tau belongs to the process given by the
//     authorization prefix partition — exactly the mux select logic of
//     rtl/verilog_gen.
//
// Checks performed every cycle:
//   * no instance is driven by two operations at once (hardware conflict);
//   * every issue on a pool instance happens while the residue counter
//     grants that instance to the issuing process (mux ownership);
//   * every operand read finds the producer's value alive in its register;
//   * on completion of each activation, all computed values equal the
//     direct data-flow-graph evaluation (per-activation input seeds).
//
// This closes the loop between scheduler, binding, register allocation and
// the static access control: if any of them were inconsistent, processes
// would corrupt each other's data here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bind/binding.h"
#include "bind/registers.h"
#include "modulo/allocation.h"

namespace mshls {

struct DatapathActivation {
  BlockId block;
  std::int64_t start = 0;
};

struct DatapathOptions {
  std::uint64_t input_seed = 1;
};

struct DatapathReport {
  bool ok = false;
  std::string mismatch;  // first divergence/conflict (empty when ok)
  std::int64_t cycles = 0;
  long activations_checked = 0;
  /// Issues that went through a globally shared instance — a measure of
  /// how much traffic the static access control actually carried.
  long shared_issues = 0;
};

class DatapathSimulator {
 public:
  /// All inputs must belong together (allocation/binding derived from the
  /// schedule on this model).
  DatapathSimulator(const SystemModel& model, const SystemSchedule& schedule,
                    const Allocation& allocation,
                    const SystemBinding& binding);

  /// Activations must be grid-aligned and non-overlapping per process
  /// (simulator.h validates those properties; here they are asserted).
  [[nodiscard]] DatapathReport Run(
      const std::vector<DatapathActivation>& trace,
      const DatapathOptions& options = {}) const;

 private:
  const SystemModel& model_;
  const SystemSchedule& schedule_;
  const Allocation& allocation_;
  const SystemBinding& binding_;
};

}  // namespace mshls
