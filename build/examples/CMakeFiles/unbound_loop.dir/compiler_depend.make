# Empty compiler generated dependencies file for unbound_loop.
# This may be replaced when dependencies are built.
