#include "sched/schedule.h"

#include <algorithm>

namespace mshls {

bool BlockSchedule::Complete() const {
  return std::all_of(start_.begin(), start_.end(),
                     [](int s) { return s >= 0; });
}

int BlockSchedule::Length(const DataFlowGraph& graph,
                          const DelayFn& delay) const {
  int len = 0;
  for (const Operation& op : graph.ops()) {
    const int s = start_[op.id.index()];
    if (s >= 0) len = std::max(len, s + delay(op.id));
  }
  return len;
}

Status ValidateBlockSchedule(const Block& block, const DelayFn& delay,
                             const BlockSchedule& schedule) {
  const DataFlowGraph& g = block.graph;
  if (schedule.size() != g.op_count())
    return {StatusCode::kInvalidArgument,
            "schedule size does not match block '" + block.name + "'"};
  for (const Operation& op : g.ops()) {
    const int s = schedule.start(op.id);
    if (s < 0)
      return {StatusCode::kFailedPrecondition,
              "op " + std::to_string(op.id.value()) + " in block '" +
                  block.name + "' is unscheduled"};
    if (s + delay(op.id) > block.time_range)
      return {StatusCode::kInvalidArgument,
              "op " + std::to_string(op.id.value()) + " in block '" +
                  block.name + "' finishes after the time range"};
  }
  for (const Edge& e : g.edges()) {
    const int from_end = schedule.start(e.from) + delay(e.from);
    if (schedule.start(e.to) < from_end)
      return {StatusCode::kInvalidArgument,
              "precedence violation " + std::to_string(e.from.value()) +
                  " -> " + std::to_string(e.to.value()) + " in block '" +
                  block.name + "'"};
  }
  return Status::Ok();
}

int OccupancyAt(const Block& block, const ResourceLibrary& lib,
                const BlockSchedule& schedule, ResourceTypeId type, int t) {
  int count = 0;
  for (const Operation& op : block.graph.ops()) {
    if (op.type != type) continue;
    const int s = schedule.start(op.id);
    if (s < 0) continue;
    const int dii = lib.type(type).dii;
    if (s <= t && t < s + dii) ++count;
  }
  return count;
}

std::vector<int> OccupancyProfile(const Block& block,
                                  const ResourceLibrary& lib,
                                  const BlockSchedule& schedule,
                                  ResourceTypeId type) {
  std::vector<int> profile(static_cast<std::size_t>(block.time_range), 0);
  const int dii = lib.type(type).dii;
  for (const Operation& op : block.graph.ops()) {
    if (op.type != type) continue;
    const int s = schedule.start(op.id);
    if (s < 0) continue;
    for (int t = s; t < s + dii && t < block.time_range; ++t)
      ++profile[static_cast<std::size_t>(t)];
  }
  return profile;
}

}  // namespace mshls
