# Empty compiler generated dependencies file for bench_periods.
# This may be replaced when dependencies are built.
